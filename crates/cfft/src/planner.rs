//! Plan creation and strategy selection — the crate's analogue of FFTW's
//! planner with its `FFTW_ESTIMATE` / `FFTW_MEASURE` / `FFTW_PATIENT` rigor
//! flags (§4.1 of the paper tunes FFTW with `FFTW_PATIENT`).
//!
//! [`Rigor::Estimate`] picks a kernel from static heuristics; the measuring
//! rigors time every applicable kernel on representative data and keep the
//! fastest, with [`Rigor::Patient`] averaging over more repetitions (and so
//! costing more planning time — the effect Table 4's FFTW column measures).

use crate::bluestein::BluesteinPlan;
use crate::complex::Complex64;
use crate::dft::dft_in_place;
use crate::factor::{is_power_of_two, is_smooth};
use crate::mixed::MixedRadixPlan;
use crate::rader::{is_prime, RaderPlan};
use crate::radix2::Radix2Plan;
use crate::Direction;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Planning rigor, mirroring FFTW's flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rigor {
    /// Heuristic choice, no measurement.
    Estimate,
    /// Time each applicable kernel once.
    Measure,
    /// Time each applicable kernel over several repetitions.
    Patient,
}

impl Rigor {
    fn reps(self, n: usize) -> usize {
        let base = match self {
            Rigor::Estimate => 0,
            Rigor::Measure => 2,
            Rigor::Patient => 8,
        };
        // Small transforms are noisy; measure them more.
        if n <= 1024 {
            base * 4
        } else {
            base
        }
    }
}

/// Which kernel a plan executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Naive O(N²) definition — only ever chosen for tiny lengths.
    Naive,
    /// In-place iterative radix-2 (power-of-two lengths).
    Radix2InPlace,
    /// Out-of-place Stockham mixed radix (smooth lengths).
    MixedRadix,
    /// Chirp-z convolution (any length).
    Bluestein,
    /// Rader prime-length convolution (odd primes).
    Rader,
}

enum Kernel {
    Naive,
    Radix2(Radix2Plan),
    Mixed(MixedRadixPlan),
    Bluestein(BluesteinPlan),
    Rader(RaderPlan),
}

/// A ready-to-execute 1-D transform of fixed length and direction.
///
/// Cheap to clone through [`Arc`]; execution is `&self` so one plan can be
/// shared by many lines of a 3-D transform.
pub struct Plan1d {
    n: usize,
    dir: Direction,
    strategy: Strategy,
    kernel: Kernel,
    scratch_len: usize,
}

impl std::fmt::Debug for Plan1d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan1d")
            .field("n", &self.n)
            .field("dir", &self.dir)
            .field("strategy", &self.strategy)
            .finish()
    }
}

impl Plan1d {
    fn with_strategy(n: usize, dir: Direction, strategy: Strategy) -> Option<Self> {
        let kernel = match strategy {
            Strategy::Naive => Kernel::Naive,
            Strategy::Radix2InPlace => Kernel::Radix2(Radix2Plan::new(n, dir)?),
            Strategy::MixedRadix => Kernel::Mixed(MixedRadixPlan::new(n, dir)?),
            Strategy::Bluestein => Kernel::Bluestein(BluesteinPlan::new(n, dir)),
            Strategy::Rader => Kernel::Rader(RaderPlan::new(n, dir)?),
        };
        let scratch_len = match &kernel {
            Kernel::Naive | Kernel::Radix2(_) => 0,
            Kernel::Mixed(_) => n,
            Kernel::Bluestein(b) => 2 * b.conv_len(),
            Kernel::Rader(r) => r.scratch_len(),
        };
        Some(Plan1d {
            n,
            dir,
            strategy,
            kernel,
            scratch_len,
        })
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the plan is for length 0 (never constructed; lengths ≥ 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Transform direction.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// The kernel the planner selected.
    #[inline]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Required scratch length for [`Self::execute`].
    #[inline]
    pub fn scratch_len(&self) -> usize {
        self.scratch_len
    }

    /// Executes the (unnormalised) transform in place. `scratch` must hold
    /// at least [`Self::scratch_len`] elements.
    pub fn execute(&self, data: &mut [Complex64], scratch: &mut [Complex64]) {
        match &self.kernel {
            Kernel::Naive => dft_in_place(data, self.dir),
            Kernel::Radix2(p) => p.execute(data),
            Kernel::Mixed(p) => p.execute(data, &mut scratch[..self.n]),
            Kernel::Bluestein(p) => p.execute(data, scratch),
            Kernel::Rader(p) => p.execute(data, scratch),
        }
    }

    /// Convenience wrapper that allocates its own scratch.
    pub fn execute_alloc(&self, data: &mut [Complex64]) {
        let mut scratch = vec![Complex64::ZERO; self.scratch_len];
        self.execute(data, &mut scratch);
    }
}

/// Creates plans, measuring kernels per the chosen rigor and caching results.
pub struct Planner {
    rigor: Rigor,
    cache: HashMap<(usize, Direction), Arc<Plan1d>>,
    planning_time: Duration,
}

impl Planner {
    /// A planner with the given rigor.
    pub fn new(rigor: Rigor) -> Self {
        Planner {
            rigor,
            cache: HashMap::new(),
            planning_time: Duration::ZERO,
        }
    }

    /// The rigor this planner measures with.
    #[inline]
    pub fn rigor(&self) -> Rigor {
        self.rigor
    }

    /// Total wall-clock time spent measuring candidate kernels so far (the
    /// quantity the paper's Table 4 reports for FFTW).
    #[inline]
    pub fn planning_time(&self) -> Duration {
        self.planning_time
    }

    /// Returns a plan for `(n, dir)`, creating and caching it on first use.
    pub fn plan(&mut self, n: usize, dir: Direction) -> Arc<Plan1d> {
        assert!(n >= 1, "transform length must be ≥ 1");
        if let Some(p) = self.cache.get(&(n, dir)) {
            return p.clone();
        }
        let start = Instant::now();
        let plan = Arc::new(self.create(n, dir));
        self.planning_time += start.elapsed();
        self.cache.insert((n, dir), plan.clone());
        plan
    }

    fn candidates(n: usize) -> Vec<Strategy> {
        let mut c = Vec::new();
        if n <= 16 {
            c.push(Strategy::Naive);
        }
        if is_power_of_two(n) {
            c.push(Strategy::Radix2InPlace);
        }
        if is_smooth(n) {
            c.push(Strategy::MixedRadix);
        }
        // Bluestein is always applicable but only worth measuring when the
        // direct kernels are absent or the length is awkward.
        if !is_smooth(n) || n > 16 {
            c.push(Strategy::Bluestein);
        }
        if n >= 3 && is_prime(n) {
            c.push(Strategy::Rader);
        }
        c
    }

    fn create(&self, n: usize, dir: Direction) -> Plan1d {
        let candidates = Self::candidates(n);
        debug_assert!(!candidates.is_empty());

        if self.rigor == Rigor::Estimate {
            // Heuristic order: smooth mixed radix beats everything except
            // tiny lengths; Bluestein only when forced.
            let pick = if n <= 4 {
                Strategy::Naive
            } else if is_smooth(n) {
                Strategy::MixedRadix
            } else {
                Strategy::Bluestein
            };
            return Plan1d::with_strategy(n, dir, pick)
                .expect("estimate heuristic picked an inapplicable strategy");
        }

        let reps = self.rigor.reps(n).max(1);
        let mut best: Option<(Duration, Plan1d)> = None;
        let mut data: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new(j as f64 * 0.001, -(j as f64) * 0.002))
            .collect();
        for strat in candidates {
            // Skip the quadratic kernel for sizes where it cannot win; its
            // measurement alone would dominate planning time.
            if strat == Strategy::Naive && n > 64 {
                continue;
            }
            let Some(plan) = Plan1d::with_strategy(n, dir, strat) else {
                continue;
            };
            let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
            // Warm-up run populates twiddle caches.
            plan.execute(&mut data, &mut scratch);
            let t0 = Instant::now();
            for _ in 0..reps {
                plan.execute(&mut data, &mut scratch);
            }
            let elapsed = t0.elapsed() / reps as u32;
            match &best {
                Some((t, _)) if *t <= elapsed => {}
                _ => best = Some((elapsed, plan)),
            }
        }
        best.expect("at least one strategy is always applicable").1
    }
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new(Rigor::Estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_abs_diff;
    use crate::dft::dft;

    fn signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new((j as f64).sin(), (j as f64 * 0.5).cos()))
            .collect()
    }

    #[test]
    fn estimate_plans_are_correct_for_mixed_sizes() {
        let mut planner = Planner::new(Rigor::Estimate);
        for n in [1usize, 2, 3, 4, 13, 16, 37, 48, 128, 250, 256, 37 * 3] {
            let plan = planner.plan(n, Direction::Forward);
            let x = signal(n);
            let mut y = x.clone();
            plan.execute_alloc(&mut y);
            assert!(
                max_abs_diff(&y, &dft(&x, Direction::Forward)) < 1e-7 * n as f64,
                "n={n}"
            );
        }
    }

    #[test]
    fn measured_plans_are_correct_and_cached() {
        let mut planner = Planner::new(Rigor::Measure);
        let a = planner.plan(96, Direction::Forward);
        let b = planner.plan(96, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b));
        let x = signal(96);
        let mut y = x.clone();
        a.execute_alloc(&mut y);
        assert!(max_abs_diff(&y, &dft(&x, Direction::Forward)) < 1e-8 * 96.0);
    }

    #[test]
    fn patient_spends_more_planning_time_than_measure() {
        let n = 2048;
        let mut m = Planner::new(Rigor::Measure);
        m.plan(n, Direction::Forward);
        let mut p = Planner::new(Rigor::Patient);
        p.plan(n, Direction::Forward);
        assert!(p.planning_time() > m.planning_time());
    }

    #[test]
    fn estimate_picks_expected_strategies() {
        let mut planner = Planner::new(Rigor::Estimate);
        assert_eq!(
            planner.plan(3, Direction::Forward).strategy(),
            Strategy::Naive
        );
        assert_eq!(
            planner.plan(240, Direction::Forward).strategy(),
            Strategy::MixedRadix
        );
        // 74 = 2·37 exceeds the direct-prime limit, so Bluestein handles it.
        assert_eq!(
            planner.plan(74, Direction::Forward).strategy(),
            Strategy::Bluestein
        );
        assert_eq!(
            planner.plan(2 * 997, Direction::Forward).strategy(),
            Strategy::Bluestein
        );
    }

    #[test]
    fn scratch_len_is_sufficient_hint() {
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(100, Direction::Forward);
        let mut data = signal(100);
        let mut scratch = vec![Complex64::ZERO; plan.scratch_len()];
        plan.execute(&mut data, &mut scratch); // must not panic
    }

    #[test]
    fn direction_is_respected() {
        let mut planner = Planner::new(Rigor::Estimate);
        let plan = planner.plan(40, Direction::Backward);
        let x = signal(40);
        let mut y = x.clone();
        plan.execute_alloc(&mut y);
        assert!(max_abs_diff(&y, &dft(&x, Direction::Backward)) < 1e-8 * 40.0);
    }
}
