//! Property-based tests of the FFT kernels: the algebraic identities every
//! DFT implementation must satisfy, checked over randomly drawn lengths,
//! signals, and planner rigors.

use cfft::complex::{max_abs_diff, rel_l2_error};
use cfft::dft::dft;
use cfft::planner::{Planner, Rigor};
use cfft::transpose::{permute3, permuted_dims, Dims3, XYZ_TO_XZY, XYZ_TO_ZXY};
use cfft::{Complex64, Direction};
use proptest::prelude::*;

fn complex_vec(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n..=n).prop_map(|v| {
        v.into_iter()
            .map(|(re, im)| Complex64::new(re, im))
            .collect()
    })
}

/// Lengths mixing smooth, prime, and awkward composites.
fn any_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..=64,
        Just(97),
        Just(128),
        Just(120),
        Just(101),
        Just(210),
        Just(256),
    ]
}

fn plan_and_run(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let mut planner = Planner::new(Rigor::Estimate);
    let plan = planner.plan(x.len(), dir);
    let mut y = x.to_vec();
    plan.execute_alloc(&mut y);
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The planner-selected kernel agrees with the O(N²) definition.
    #[test]
    fn fft_matches_naive_dft(n in any_len(), seed in 0u64..1000) {
        let x: Vec<Complex64> = (0..n)
            .map(|j| {
                let t = (j as u64).wrapping_mul(seed.wrapping_add(1)) as f64;
                Complex64::new((t * 1e-3).sin(), (t * 7e-4).cos())
            })
            .collect();
        let got = plan_and_run(&x, Direction::Forward);
        let want = dft(&x, Direction::Forward);
        prop_assert!(rel_l2_error(&got, &want) < 1e-9);
    }

    /// Linearity: FFT(a·x + y) = a·FFT(x) + FFT(y).
    #[test]
    fn fft_is_linear(n in any_len(), a_re in -2.0f64..2.0, a_im in -2.0f64..2.0) {
        let x: Vec<Complex64> =
            (0..n).map(|j| Complex64::new((j as f64).sin(), 0.25 * j as f64)).collect();
        let y: Vec<Complex64> =
            (0..n).map(|j| Complex64::new(1.0 / (j + 1) as f64, (j as f64).cos())).collect();
        let a = Complex64::new(a_re, a_im);
        let combo: Vec<Complex64> =
            x.iter().zip(&y).map(|(xi, yi)| a * *xi + *yi).collect();
        let lhs = plan_and_run(&combo, Direction::Forward);
        let fx = plan_and_run(&x, Direction::Forward);
        let fy = plan_and_run(&y, Direction::Forward);
        let rhs: Vec<Complex64> = fx.iter().zip(&fy).map(|(fxi, fyi)| a * *fxi + *fyi).collect();
        prop_assert!(rel_l2_error(&lhs, &rhs) < 1e-9);
    }

    /// Parseval: ‖FFT(x)‖² = N·‖x‖².
    #[test]
    fn parseval(xs in complex_vec(96)) {
        let y = plan_and_run(&xs, Direction::Forward);
        let ex: f64 = xs.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!((ey - 96.0 * ex).abs() <= 1e-8 * (1.0 + ey.abs()));
    }

    /// Forward then backward recovers the input (scaled by N).
    #[test]
    fn round_trip(n in any_len(), xs_seed in 0u64..500) {
        let x: Vec<Complex64> = (0..n)
            .map(|j| {
                let t = j as f64 + xs_seed as f64;
                Complex64::new((t * 0.11).sin(), (t * 0.07).cos())
            })
            .collect();
        let y = plan_and_run(&x, Direction::Forward);
        let z = plan_and_run(&y, Direction::Backward);
        let z: Vec<Complex64> = z.into_iter().map(|v| v / n as f64).collect();
        prop_assert!(max_abs_diff(&z, &x) < 1e-9 * n as f64);
    }

    /// FFT of the conjugate equals the conjugated, index-reversed FFT.
    #[test]
    fn conjugate_symmetry(xs in complex_vec(60)) {
        let n = xs.len();
        let conj_x: Vec<Complex64> = xs.iter().map(|z| z.conj()).collect();
        let f_conj = plan_and_run(&conj_x, Direction::Forward);
        let f = plan_and_run(&xs, Direction::Forward);
        for k in 0..n {
            let mirrored = f[(n - k) % n].conj();
            prop_assert!((f_conj[k] - mirrored).abs() < 1e-9);
        }
    }

    /// Axis permutations are bijections: every source element lands exactly
    /// once, at the permuted coordinates.
    #[test]
    fn permute3_is_a_bijection(
        n0 in 1usize..8, n1 in 1usize..8, n2 in 1usize..8,
        perm_pick in 0usize..2,
    ) {
        let sd = Dims3::new(n0, n1, n2);
        let perm = if perm_pick == 0 { XYZ_TO_ZXY } else { XYZ_TO_XZY };
        let src: Vec<Complex64> =
            (0..sd.len()).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let mut dst = vec![Complex64::new(-1.0, -1.0); sd.len()];
        permute3(&src, &mut dst, sd, perm);
        let dd = permuted_dims(sd, perm);
        // Check every coordinate triple maps correctly.
        for i0 in 0..n0 {
            for i1 in 0..n1 {
                for i2 in 0..n2 {
                    let s = [i0, i1, i2];
                    let d = dd.idx(s[perm[0]], s[perm[1]], s[perm[2]]);
                    prop_assert_eq!(dst[d], src[sd.idx(i0, i1, i2)]);
                }
            }
        }
    }

    /// Time-domain circular convolution equals point-wise spectral product.
    #[test]
    fn convolution_theorem(seed in 0u64..200) {
        let n = 64usize;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new(((j as u64 + seed) as f64 * 0.3).sin(), 0.0))
            .collect();
        let h: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new(if j < 4 { 0.25 } else { 0.0 }, 0.0))
            .collect();
        // Direct circular convolution.
        let mut direct = vec![Complex64::ZERO; n];
        for (k, slot) in direct.iter_mut().enumerate() {
            for j in 0..n {
                *slot += x[j] * h[(n + k - j) % n];
            }
        }
        let fx = plan_and_run(&x, Direction::Forward);
        let fh = plan_and_run(&h, Direction::Forward);
        let prod: Vec<Complex64> = fx.iter().zip(&fh).map(|(a, b)| *a * *b).collect();
        let mut back = plan_and_run(&prod, Direction::Backward);
        for v in &mut back {
            *v = *v / n as f64;
        }
        prop_assert!(max_abs_diff(&back, &direct) < 1e-9 * n as f64);
    }
}
