//! Property-based tests of the core 3-D pipeline: distributed = serial for
//! random shapes and parameters, and structural invariants of the
//! decomposition and parameter machinery.

use cfft::planner::Rigor;
use cfft::Direction;
use fft3d::decomp::AxisSplit;
use fft3d::real_env::{compare_with_serial, fft3_dist, local_test_slab};
use fft3d::serial::{fft3_serial, full_test_array, test_field};
use fft3d::{
    Checkpoint, ComputeSource, ProblemSpec, ReplicaSource, SlabSource, TuningParams, Variant,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy for small but varied problem shapes.
fn small_spec() -> impl Strategy<Value = ProblemSpec> {
    (2usize..=12, 2usize..=12, 2usize..=12, 1usize..=4).prop_map(|(nx, ny, nz, p)| ProblemSpec {
        nx,
        ny,
        nz,
        p,
    })
}

/// Strategy for feasible parameters of a given spec, derived from raw draws.
fn params_for(spec: ProblemSpec) -> impl Strategy<Value = TuningParams> {
    let nxl = spec.nx.div_ceil(spec.p).max(1);
    let nyl = spec.ny.div_ceil(spec.p).max(1);
    (
        1usize..=spec.nz, // t
        1usize..=4,       // w (clamped below)
        1usize..=nxl,     // px
        1usize..=spec.nz, // pz (clamped to t below)
        1usize..=nyl,     // uy
        1usize..=spec.nz, // uz
        0u32..6,
        0u32..6,
        0u32..6,
        (0u32..6, 1usize..=3), // (fx, threads) — exercise parallel kernels too
    )
        .prop_map(move |(t, w, px, pz, uy, uz, fy, fp, fu, (fx, threads))| {
            let tiles = spec.nz.div_ceil(t);
            TuningParams {
                t,
                w: w.min(tiles),
                px,
                pz: pz.min(t),
                uy,
                uz: uz.min(t),
                fy,
                fp,
                fu,
                fx,
                threads,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline correctness property: for random shapes, process
    /// counts, and (feasible) parameter draws, the distributed overlapped
    /// transform equals the serial reference.
    #[test]
    fn distributed_equals_serial(
        (spec, params) in small_spec().prop_flat_map(|s| params_for(s).prop_map(move |p| (s, p)))
    ) {
        let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
        fft3_serial(&mut reference, spec.nx, spec.ny, spec.nz, Direction::Forward);
        let reference = Arc::new(reference);
        let errs = mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let out = fft3_dist(
                &comm, spec, Variant::New, params, Direction::Forward, Rigor::Estimate, &input,
            );
            compare_with_serial(&spec, comm.rank(), &out, &reference)
        });
        let tol = 1e-9 * spec.len() as f64;
        for e in errs {
            prop_assert!(e < tol, "err {} for {:?} {:?}", e, spec, params);
        }
    }

    /// Axis splits partition the axis exactly with monotone offsets, for
    /// any (n, p).
    #[test]
    fn axis_split_partitions(n in 0usize..500, p in 1usize..40) {
        let s = AxisSplit::new(n, p);
        prop_assert_eq!(s.counts().iter().sum::<usize>(), n);
        let mut off = 0;
        for r in 0..p {
            prop_assert_eq!(s.offset(r), off);
            off += s.count(r);
            // Counts differ by at most one and are non-increasing.
            if r > 0 {
                prop_assert!(s.count(r) <= s.count(r - 1));
                prop_assert!(s.count(r - 1) - s.count(r) <= 1);
            }
        }
    }

    /// `owner` inverts `offset`/`count` for every plane.
    #[test]
    fn owner_is_inverse(n in 1usize..300, p in 1usize..20) {
        let s = AxisSplit::new(n, p);
        for i in (0..n).step_by((n / 17).max(1)) {
            let r = s.owner(i);
            prop_assert!(i >= s.offset(r));
            prop_assert!(i < s.offset(r) + s.count(r));
        }
    }

    /// The §4.4 seed is feasible for any spec with nonzero extents.
    #[test]
    fn seed_is_always_feasible(spec in small_spec()) {
        let seed = TuningParams::seed(&spec);
        prop_assert!(seed.is_feasible(&spec), "{:?} for {:?}", seed, spec);
    }

    /// Validation accepts exactly the §4.4 constraint set: perturbing any
    /// parameter beyond its bound flips feasibility.
    #[test]
    fn validation_rejects_out_of_range(spec in small_spec()) {
        let seed = TuningParams::seed(&spec);
        let nxl = spec.nx.div_ceil(spec.p);
        let nyl = spec.ny.div_ceil(spec.p);
        // prop_assert! stringifies its expression into a format string, so
        // struct literals with braces must live in bindings.
        let bad_t = TuningParams { t: spec.nz + 1, ..seed };
        let bad_px = TuningParams { px: nxl + 1, ..seed };
        let bad_uy = TuningParams { uy: nyl + 1, ..seed };
        let bad_pz = TuningParams { pz: seed.t + 1, ..seed };
        let bad_uz = TuningParams { uz: seed.t + 1, ..seed };
        let bad_w = TuningParams { w: 0, ..seed };
        prop_assert!(!bad_t.is_feasible(&spec));
        prop_assert!(!bad_px.is_feasible(&spec));
        prop_assert!(!bad_uy.is_feasible(&spec));
        prop_assert!(!bad_pz.is_feasible(&spec));
        prop_assert!(!bad_uz.is_feasible(&spec));
        prop_assert!(!bad_w.is_feasible(&spec));
    }

    /// Three-source slab equivalence, the pure half: the replica-cut and
    /// generator-built slabs agree for every rank of every decomposition —
    /// including ranks outside it, where both must refuse.
    #[test]
    fn replica_and_compute_sources_agree_everywhere(spec in small_spec()) {
        let full = Arc::new(full_test_array(spec.nx, spec.ny, spec.nz));
        let replica = ReplicaSource::new(full);
        let compute = ComputeSource::new(test_field);
        for p in 1..=spec.p {
            let s = ProblemSpec { p, ..spec };
            for rank in 0..p + 1 {
                prop_assert_eq!(replica.slab(&s, rank), compute.slab(&s, rank),
                    "p={} rank={}", p, rank);
            }
        }
    }

    /// XOR-parity checkpoints reconstruct *any* single lost rank's data
    /// bit-exactly: for every possible loss, every survivor's slab of the
    /// shrunk decomposition matches the replica cut bit for bit.
    #[test]
    fn parity_reconstruction_is_bit_exact_after_any_single_loss(
        spec in (1usize..=8, 1usize..=5, 1usize..=5, 2usize..=4)
            .prop_map(|(nx, ny, nz, p)| ProblemSpec { nx, ny, nz, p })
    ) {
        let full = Arc::new(full_test_array(spec.nx, spec.ny, spec.nz));
        let fullc = Arc::clone(&full);
        mpisim::run(spec.p, move |comm| {
            let me = comm.rank();
            let own = local_test_slab(&spec, me);
            let src = Checkpoint::capture(&comm, &spec, &own).into_source();
            let replica = ReplicaSource::new(Arc::clone(&fullc));
            for lost in 0..spec.p {
                let color = if me == lost { -1 } else { 0 };
                let Some(sub) = comm.split(color, me as i64) else { continue };
                let mut spec2 = spec;
                spec2.p = sub.size();
                src.prepare(&sub, &spec2, &[lost]);
                for r in 0..spec2.p {
                    let got = src.slab(&spec2, r).expect("rebuilt slab");
                    let want = replica.slab(&spec2, r).expect("replica slab");
                    let same = got.len() == want.len()
                        && got.iter().zip(&want).all(|(a, b)| {
                            a.re.to_bits() == b.re.to_bits()
                                && a.im.to_bits() == b.im.to_bits()
                        });
                    assert!(same, "lost={lost} rank={r} differs");
                }
            }
        });
    }

    /// Tile count times tile size covers Nz with only the last tile short.
    #[test]
    fn tiles_cover_nz(spec in small_spec(), t in 1usize..16) {
        let t = t.min(spec.nz);
        let params = TuningParams { t, pz: 1, uz: 1, w: 1, ..TuningParams::seed(&spec) };
        let k = params.tiles(&spec);
        prop_assert!(k * t >= spec.nz);
        prop_assert!((k - 1) * t < spec.nz);
    }
}
