//! Process-wide transform-plan cache: the exchange-geometry companion to
//! [`cfft::PlanCache`].
//!
//! A distributed transform needs two kinds of "plans": the 1-D FFT kernels
//! (cached process-wide by [`cfft::PlanCache`]) and the per-tile all-to-all
//! schedule geometry — per-destination send counts, per-source receive
//! counts, and their displacements, one set per communication tile. Today's
//! entry points recompute the latter on every call (four `Vec` allocations
//! per tile per run). This cache hoists that to process scope, keyed by
//! `(p, rank, nx, ny, nz, t)`: any repeat of a geometry this process has
//! transformed before does **zero schedule setup**, completing the
//! zero-planning story the plan cache started.
//!
//! The cached data is *passive* — pure integer geometry derived from the
//! problem shape and block decomposition, independent of any live
//! communicator or world. That is what makes a process-wide cache safe:
//! unlike a persistent collective (which pins runtime state and must be
//! freed before its world tears down), geometry can outlive any number of
//! worlds and be shared freely across rank threads via `Arc`.

use crate::decomp::{AxisSplit, Decomp};
use crate::params::ProblemSpec;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Bound on resident geometries; far above a realistic working set but keeps
/// a pathological caller (e.g. a tuner sweeping thousands of tile sizes)
/// from growing the map without limit.
const DEFAULT_CAPACITY: usize = 1024;

/// One tile's exchange geometry: everything `ialltoallv` (or a persistent
/// plan's init) needs besides the data itself.
#[derive(Debug)]
pub struct TileExchange {
    /// Elements this rank sends to each destination rank.
    pub send_counts: Arc<[usize]>,
    /// Exclusive prefix sums of `send_counts`.
    pub send_displs: Arc<[usize]>,
    /// Elements this rank receives from each source rank.
    pub recv_counts: Arc<[usize]>,
    /// Exclusive prefix sums of `recv_counts`.
    pub recv_displs: Arc<[usize]>,
    /// Total elements staged on the send side.
    pub total_send: usize,
    /// Total elements arriving on the receive side.
    pub total_recv: usize,
}

/// The full per-rank schedule geometry of one `(spec, t)` transform: one
/// [`TileExchange`] per communication tile (the last tile may be shorter).
#[derive(Debug)]
pub struct ExchangeGeometry {
    /// Per-tile exchange shapes, indexed by tile number.
    pub tiles: Vec<Arc<TileExchange>>,
}

/// The per-rank schedule geometry of one pencil transform: the row
/// exchange's tiles (z ↔ y within the rank's row, tiled along local x) and
/// the column exchange's tiles (y ↔ x within the rank's column, tiled along
/// local z). Counts are sized for the subcommunicator, not the world:
/// `row[i].send_counts.len() == pc`, `col[i].send_counts.len() == pr`.
#[derive(Debug)]
pub struct PencilGeometry {
    /// Stage-1 (row exchange) tiles, indexed along local x.
    pub row: Vec<Arc<TileExchange>>,
    /// Stage-2 (column exchange) tiles, indexed along local z.
    pub col: Vec<Arc<TileExchange>>,
}

fn displs(counts: &[usize]) -> Vec<usize> {
    let mut d = vec![0usize; counts.len()];
    for i in 1..counts.len() {
        d[i] = d[i - 1] + counts[i - 1];
    }
    d
}

fn build(spec: &ProblemSpec, rank: usize, t: usize) -> ExchangeGeometry {
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    let nxl = decomp.x.count(rank);
    let nyl = decomp.y.count(rank);
    let k = spec.nz.div_ceil(t.max(1));
    let tiles = (0..k)
        .map(|tile| {
            let z0 = tile * t;
            let tz = (z0 + t).min(spec.nz) - z0;
            let send_counts: Vec<usize> =
                (0..spec.p).map(|q| tz * nxl * decomp.y.count(q)).collect();
            let recv_counts: Vec<usize> =
                (0..spec.p).map(|s| tz * decomp.x.count(s) * nyl).collect();
            group_tile(send_counts, recv_counts)
        })
        .collect();
    ExchangeGeometry { tiles }
}

/// One tile's counts over a subgroup of `peers` ranks: the shared shape of
/// both pencil stages (and of the slab build above, with `peers = p`).
fn group_tile(send_counts: Vec<usize>, recv_counts: Vec<usize>) -> Arc<TileExchange> {
    Arc::new(TileExchange {
        send_displs: displs(&send_counts).into(),
        recv_displs: displs(&recv_counts).into(),
        total_send: send_counts.iter().sum(),
        total_recv: recv_counts.iter().sum(),
        send_counts: send_counts.into(),
        recv_counts: recv_counts.into(),
    })
}

fn build_pencil(spec: &ProblemSpec, pr: usize, pc: usize, rank: usize, t: usize) -> PencilGeometry {
    let (row, col) = (rank / pc, rank % pc);
    let xs = AxisSplit::new(spec.nx, pr); // X_r
    let ys = AxisSplit::new(spec.ny, pc); // Y_c
    let zs = AxisSplit::new(spec.nz, pc); // Z_c
    let y2s = AxisSplit::new(spec.ny, pr); // Y2_r
    let (nxl, nyc) = (xs.count(row), ys.count(col));
    let nzl = zs.count(col);
    let ny2l = y2s.count(row);

    // Stage 1 tiles along local x. Every member of the row shares `row`,
    // hence nxl and the tile partition — the counts below therefore agree
    // pairwise across the row communicator.
    let xt = t.clamp(1, nxl.max(1));
    let k1 = nxl.div_ceil(xt);
    let row_tiles = (0..k1)
        .map(|i| {
            let x0 = i * xt;
            let cnt = (x0 + xt).min(nxl) - x0;
            let send: Vec<usize> = (0..pc).map(|j| cnt * nyc * zs.count(j)).collect();
            let recv: Vec<usize> = (0..pc).map(|s| cnt * ys.count(s) * nzl).collect();
            group_tile(send, recv)
        })
        .collect();

    // Stage 2 tiles along local z. Every member of the column shares `col`,
    // hence nzl and the tile partition.
    let zt = t.clamp(1, nzl.max(1));
    let k2 = nzl.div_ceil(zt);
    let col_tiles = (0..k2)
        .map(|i| {
            let z0 = i * zt;
            let cnt = (z0 + zt).min(nzl) - z0;
            let send: Vec<usize> = (0..pr).map(|j| nxl * y2s.count(j) * cnt).collect();
            let recv: Vec<usize> = (0..pr).map(|s| xs.count(s) * ny2l * cnt).collect();
            group_tile(send, recv)
        })
        .collect();

    PencilGeometry {
        row: row_tiles,
        col: col_tiles,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GeomKey {
    p: usize,
    rank: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    t: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PencilKey {
    pr: usize,
    pc: usize,
    rank: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    t: usize,
}

struct Entry {
    geom: Arc<ExchangeGeometry>,
    last_used: u64,
}

struct Inner {
    map: HashMap<GeomKey, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

struct PencilEntry {
    geom: Arc<PencilGeometry>,
    last_used: u64,
}

struct PencilInner {
    map: HashMap<PencilKey, PencilEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

/// Counters describing the cache's lifetime behaviour (mirrors
/// [`cfft::CacheStats`] for the geometry side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeomCacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that had to build the geometry.
    pub misses: u64,
    /// Geometries currently resident.
    pub entries: usize,
}

/// Thread-safe LRU store of [`ExchangeGeometry`]s, with a process-wide
/// [`TransformPlanCache::global`] instance shared by every transform entry
/// point (the same discipline as [`cfft::PlanCache`]).
pub struct TransformPlanCache {
    inner: Mutex<Inner>,
    pencil: Mutex<PencilInner>,
    capacity: usize,
}

impl TransformPlanCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache evicting least-recently-used geometries beyond
    /// `capacity` (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be ≥ 1");
        TransformPlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
            }),
            pencil: Mutex::new(PencilInner {
                map: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// The shared process-wide instance.
    pub fn global() -> &'static TransformPlanCache {
        static GLOBAL: OnceLock<TransformPlanCache> = OnceLock::new();
        GLOBAL.get_or_init(TransformPlanCache::new)
    }

    /// The cached geometry for `rank`'s view of `(spec, t)`, building (and
    /// caching) on first use. The boolean is `true` on a hit — i.e. when
    /// this call did zero schedule setup.
    pub fn geometry(
        &self,
        spec: &ProblemSpec,
        rank: usize,
        t: usize,
    ) -> (Arc<ExchangeGeometry>, bool) {
        let key = GeomKey {
            p: spec.p,
            rank,
            nx: spec.nx,
            ny: spec.ny,
            nz: spec.nz,
            t,
        };
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.map.get_mut(&key) {
            e.last_used = clock;
            let geom = e.geom.clone();
            inner.hits += 1;
            return (geom, true);
        }
        // Build under the lock: when all p rank threads arrive at once only
        // one of them computes (the geometry is tiny; contention is not).
        let geom = Arc::new(build(spec, rank, t));
        inner.misses += 1;
        if inner.map.len() >= self.capacity {
            // Evict the least-recently-used entry (never the one being
            // inserted — it is not in the map yet).
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(
            key,
            Entry {
                geom: geom.clone(),
                last_used: clock,
            },
        );
        (geom, false)
    }

    /// The cached pencil geometry for `rank`'s view of `(spec, pr × pc, t)`
    /// — both stages' per-tile counts, sized for the row/column
    /// subcommunicators. Builds (and caches) on first use; the boolean is
    /// `true` on a hit.
    pub fn pencil_geometry(
        &self,
        spec: &ProblemSpec,
        pr: usize,
        pc: usize,
        rank: usize,
        t: usize,
    ) -> (Arc<PencilGeometry>, bool) {
        let key = PencilKey {
            pr,
            pc,
            rank,
            nx: spec.nx,
            ny: spec.ny,
            nz: spec.nz,
            t,
        };
        let mut inner = self.pencil.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.map.get_mut(&key) {
            e.last_used = clock;
            let geom = e.geom.clone();
            inner.hits += 1;
            return (geom, true);
        }
        let geom = Arc::new(build_pencil(spec, pr, pc, rank, t));
        inner.misses += 1;
        if inner.map.len() >= self.capacity {
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(
            key,
            PencilEntry {
                geom: geom.clone(),
                last_used: clock,
            },
        );
        (geom, false)
    }

    /// A snapshot of the cache's counters.
    pub fn stats(&self) -> GeomCacheStats {
        let inner = self.inner.lock();
        GeomCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
        }
    }

    /// A snapshot of the pencil-geometry side's counters.
    pub fn pencil_stats(&self) -> GeomCacheStats {
        let inner = self.pencil.lock();
        GeomCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
        }
    }
}

impl Default for TransformPlanCache {
    fn default() -> Self {
        TransformPlanCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProblemSpec {
        ProblemSpec {
            nx: 10,
            ny: 9,
            nz: 8,
            p: 4,
        }
    }

    #[test]
    fn second_lookup_is_a_hit_sharing_the_same_geometry() {
        let cache = TransformPlanCache::new();
        let (a, hit_a) = cache.geometry(&spec(), 1, 3);
        let (b, hit_b) = cache.geometry(&spec(), 1, 3);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn geometry_matches_the_hand_computed_counts() {
        // spec 10×9×8 on p=4: x blocks 3,3,2,2; y blocks 3,2,2,2.
        let (g, _) = TransformPlanCache::new().geometry(&spec(), 0, 3);
        assert_eq!(g.tiles.len(), 3, "⌈8/3⌉ tiles");
        let t0 = &g.tiles[0];
        // Rank 0: nxl=3. send_counts[q] = tz·nxl·nyl_q = 3·3·{3,2,2,2}.
        assert_eq!(&*t0.send_counts, &[27, 18, 18, 18]);
        assert_eq!(&*t0.send_displs, &[0, 27, 45, 63]);
        // recv_counts[s] = tz·nxl_s·nyl = 3·{3,3,2,2}·3.
        assert_eq!(&*t0.recv_counts, &[27, 27, 18, 18]);
        assert_eq!(t0.total_send, 81);
        assert_eq!(t0.total_recv, 90);
        // Last tile is short: tz = 8 − 6 = 2.
        let t2 = &g.tiles[2];
        assert_eq!(&*t2.send_counts, &[18, 12, 12, 12]);
    }

    #[test]
    fn keys_separate_rank_and_tile_size() {
        let cache = TransformPlanCache::new();
        let (a, _) = cache.geometry(&spec(), 0, 3);
        let (b, _) = cache.geometry(&spec(), 1, 3);
        let (c, _) = cache.geometry(&spec(), 0, 4);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn eviction_is_lru_and_never_evicts_the_inserted_key() {
        let cache = TransformPlanCache::with_capacity(2);
        cache.geometry(&spec(), 0, 1);
        cache.geometry(&spec(), 0, 2);
        // Touch t=1 so t=2 is the LRU victim when t=3 arrives.
        let (_, hit) = cache.geometry(&spec(), 0, 1);
        assert!(hit);
        let (_, hit) = cache.geometry(&spec(), 0, 3);
        assert!(!hit, "fresh insert is a miss, not its own victim");
        assert_eq!(cache.stats().entries, 2);
        let (_, hit) = cache.geometry(&spec(), 0, 3);
        assert!(hit, "the entry just inserted at capacity must survive");
        let (_, hit) = cache.geometry(&spec(), 0, 2);
        assert!(!hit, "the LRU entry was the one evicted");
    }

    #[test]
    fn pencil_geometry_caches_and_counts_match_pairwise() {
        let cache = TransformPlanCache::new();
        let spec = ProblemSpec {
            nx: 7,
            ny: 9,
            nz: 10,
            p: 6,
        };
        let (pr, pc) = (3, 2);
        let (a, hit_a) = cache.pencil_geometry(&spec, pr, pc, 0, 2);
        let (b, hit_b) = cache.pencil_geometry(&spec, pr, pc, 0, 2);
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.pencil_stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));

        // Pairwise consistency: what rank (r, c) sends to row-peer j must be
        // what (r, j) expects from source c, tile by tile — and likewise for
        // the column exchange. This is the invariant `ialltoallv` asserts at
        // runtime; pin it statically here.
        let geoms: Vec<_> = (0..spec.p)
            .map(|rank| cache.pencil_geometry(&spec, pr, pc, rank, 2).0)
            .collect();
        for r in 0..pr {
            for c in 0..pc {
                let me = &geoms[r * pc + c];
                for j in 0..pc {
                    let peer = &geoms[r * pc + j];
                    assert_eq!(me.row.len(), peer.row.len(), "row tile counts agree");
                    for (ti, tile) in me.row.iter().enumerate() {
                        assert_eq!(
                            tile.send_counts[j], peer.row[ti].recv_counts[c],
                            "row tile {ti}: ({r},{c})→({r},{j})"
                        );
                    }
                }
                for j in 0..pr {
                    let peer = &geoms[j * pc + c];
                    assert_eq!(me.col.len(), peer.col.len(), "col tile counts agree");
                    for (ti, tile) in me.col.iter().enumerate() {
                        assert_eq!(
                            tile.send_counts[j], peer.col[ti].recv_counts[r],
                            "col tile {ti}: ({r},{c})→({j},{c})"
                        );
                    }
                }
            }
        }
        // Totals over all tiles cover the full local block on both sides.
        let xs = AxisSplit::new(spec.nx, pr);
        let ys = AxisSplit::new(spec.ny, pc);
        let zs = AxisSplit::new(spec.nz, pc);
        for r in 0..pr {
            for c in 0..pc {
                let g = &geoms[r * pc + c];
                let sent: usize = g.row.iter().map(|t| t.total_send).sum();
                assert_eq!(sent, xs.count(r) * ys.count(c) * spec.nz);
                let recvd: usize = g.row.iter().map(|t| t.total_recv).sum();
                assert_eq!(recvd, xs.count(r) * spec.ny * zs.count(c));
            }
        }
    }

    #[test]
    fn global_is_shared_across_call_sites() {
        let (a, _) = TransformPlanCache::global().geometry(&spec(), 3, 5);
        let (b, hit) = TransformPlanCache::global().geometry(&spec(), 3, 5);
        assert!(hit);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
