//! # fft3d — auto-tunable parallel 3-D FFT with computation-communication
//! overlap
//!
//! The primary contribution of Song & Hollingsworth, *"Designing and
//! Auto-Tuning Parallel 3-D FFT for Computation-Communication Overlap"*
//! (PPoPP 2014), reimplemented in Rust:
//!
//! * 1-D (slab) decomposition with the seven-step procedure of §2.2;
//! * communication tiles and a window of concurrent non-blocking
//!   all-to-alls (`T`, `W`), with *all four* compute steps (FFTy, Pack,
//!   Unpack, FFTx) overlapping communication — Algorithm 1;
//! * fully asynchronous progression by periodic `MPI_Test` (`Fy, Fp, Fu,
//!   Fx`) — §3.3;
//! * loop tiling of Pack/Unpack for cache reuse (`Px, Pz, Uy, Uz`) — §3.4;
//! * the `Nx = Ny` fast-transpose path — §3.5;
//! * the comparators of §5: FFTW-style blocking, Hoefler et al.'s TH, and
//!   the non-overlapped NEW-0/TH-0.
//!
//! Two interchangeable backends run the same pipeline schedule
//! ([`pipeline::OverlapEnv`]):
//!
//! * [`real_env::fft3_dist`] executes on real data over the [`mpisim`]
//!   runtime (correctness; verified against [`serial::fft3_serial`]);
//! * [`sim_env::fft3_simulated`] charges [`simnet`]'s calibrated cost
//!   models (performance studies at the paper's scales).
//!
//! ```
//! use fft3d::{ProblemSpec, TuningParams, Variant};
//! use fft3d::sim_env::fft3_simulated;
//! use simnet::model::umd_cluster;
//!
//! let spec = ProblemSpec::cube(256, 16);
//! let params = TuningParams::seed(&spec);
//! let new = fft3_simulated(umd_cluster(), spec, Variant::New, params, false);
//! let fftw = fft3_simulated(umd_cluster(), spec, Variant::Fftw, params, false);
//! assert!(new.time < fftw.time); // overlap wins on the slow network
//! ```

// `x % n == 0` keeps the stated MSRV (1.85); `is_multiple_of` needs 1.87.
#![allow(clippy::manual_is_multiple_of)]
// Error-path hygiene (same policy as mpisim): non-test code surfaces typed
// errors or panics with a diagnostic `expect`, never a bare `.unwrap()`.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod breakdown;
pub mod decomp;
pub mod error;
pub mod multi;
pub mod params;
pub mod pencil;
pub mod pipeline;
pub mod real_env;
pub mod recover;
pub mod serial;
pub mod service;
pub mod sim_env;
pub mod trace;
pub mod xplan;

pub use breakdown::{RunStats, StepTimes};
pub use decomp::{auto_select, Decomposition};
pub use error::Error;
pub use error::IntegrityStage;
pub use multi::{multi_simulated, try_multi_simulated, MultiReport};
pub use params::{ProblemSpec, ThParams, TuningParams};
pub use pencil::{
    compare_pencil_with_serial, fft3_pencil, fft3_pencil_overlapped, pencil_feasible,
    pencil_overlap_simulated, pencil_overlap_simulated_params, pencil_overlap_simulated_repeated,
    pencil_seed, pencil_simulated, pencil_test_input, try_fft3_pencil, try_fft3_pencil_overlapped,
    try_fft3_pencil_overlapped_traced, PencilGrid, PencilOutput, PencilRunOutput, PencilSession,
};
pub use pipeline::{Recovery, Resilience};
pub use real_env::{
    fft3_dist, fft3_dist_traced, try_fft3_dist, try_fft3_dist_traced, FftSession, OutLayout,
    RunOutput, Variant,
};
pub use recover::{
    run_recoverable, Checkpoint, ComputeSource, NoSource, ParitySource, RecoverConfig,
    RecoverOutcome, ReplicaSource, SlabSource,
};
pub use service::{
    jain_index, Admission, CancelReason, FctStats, IsolatedRun, JobData, JobOutcome, JobRecord,
    JobSpec, RejectReason, Service, ServiceConfig, ServiceReport, TenantStats,
};
pub use sim_env::{
    fft3_simulated, fft3_simulated_repeated, fft3_simulated_traced, th_simulated,
    try_fft3_simulated, SimReport,
};
pub use trace::{
    derive_step_times, overlap_summary, trace_to_json, DegradeAction, EventKind, MemRecorder,
    NoopRecorder, OverlapSummary, Recorder, TraceEvent,
};
pub use xplan::{ExchangeGeometry, GeomCacheStats, TileExchange, TransformPlanCache};
