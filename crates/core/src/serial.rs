//! Serial reference 3-D FFT.
//!
//! The executable specification every distributed variant is verified
//! against: `d` 1-D transform sweeps along each axis (§2.1), performed
//! directly on an `x-y-z` row-major array.

use crate::params::ProblemSpec;
use cfft::batch::{execute_batch, BatchLayout, BatchScratch};
use cfft::planner::Rigor;
use cfft::transpose::{permute3, permuted_dims, Dims3, XYZ_TO_ZXY};
use cfft::{Complex64, Direction, PlanCache};

/// Computes the full 3-D FFT of `data` (layout `x-y-z`, z contiguous, size
/// `nx·ny·nz`) in place.
pub fn fft3_serial(data: &mut [Complex64], nx: usize, ny: usize, nz: usize, dir: Direction) {
    assert_eq!(data.len(), nx * ny * nz, "array does not match dimensions");
    if data.is_empty() {
        return;
    }
    // Plans come from the process-wide cache: repeated reference transforms
    // of the same geometry (every test does this) never replan.
    let cache = PlanCache::global();

    // z lines are contiguous: one batched sweep.
    let plan_z = cache.plan(nz, dir, Rigor::Estimate);
    let mut scratch = BatchScratch::for_plan(&plan_z);
    execute_batch(
        &plan_z,
        data,
        BatchLayout::contiguous(nz, nx * ny),
        &mut scratch,
    );

    // Rotate x-y-z → z-x-y so y lines become contiguous, sweep, rotate
    // again (→ y-z-x) so x lines become contiguous, sweep, and rotate once
    // more to return to x-y-z.
    let mut tmp = vec![Complex64::ZERO; data.len()];
    let d0 = Dims3::new(nx, ny, nz);
    permute3(data, &mut tmp, d0, XYZ_TO_ZXY);
    let d1 = permuted_dims(d0, XYZ_TO_ZXY); // (nz, nx, ny)
    let plan_y = cache.plan(ny, dir, Rigor::Estimate);
    let mut scratch = BatchScratch::for_plan(&plan_y);
    execute_batch(
        &plan_y,
        &mut tmp,
        BatchLayout::contiguous(ny, nz * nx),
        &mut scratch,
    );

    permute3(&tmp, data, d1, XYZ_TO_ZXY);
    let d2 = permuted_dims(d1, XYZ_TO_ZXY); // (ny, nz, nx)
    let plan_x = cache.plan(nx, dir, Rigor::Estimate);
    let mut scratch = BatchScratch::for_plan(&plan_x);
    execute_batch(
        &plan_x,
        data,
        BatchLayout::contiguous(nx, ny * nz),
        &mut scratch,
    );

    permute3(data, &mut tmp, d2, XYZ_TO_ZXY); // back to (nx, ny, nz)
    data.copy_from_slice(&tmp);
}

/// Convenience: serial 3-D FFT of a [`ProblemSpec`]-shaped array.
pub fn fft3_serial_spec(data: &mut [Complex64], spec: &ProblemSpec, dir: Direction) {
    fft3_serial(data, spec.nx, spec.ny, spec.nz, dir);
}

/// Deterministic pseudo-random test field: value depends only on global
/// coordinates, so ranks can generate their slabs independently.
pub fn test_field(x: usize, y: usize, z: usize) -> Complex64 {
    // SplitMix-style hash of the coordinates, mapped into [-1, 1).
    let mut h = (x as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((y as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add((z as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    let re = (h & 0xffff_ffff) as f64 / 2f64.powi(31) - 1.0;
    let im = (h >> 32) as f64 / 2f64.powi(31) - 1.0;
    Complex64::new(re, im)
}

/// Fills a full `x-y-z` array with [`test_field`].
pub fn full_test_array(nx: usize, ny: usize, nz: usize) -> Vec<Complex64> {
    let mut v = Vec::with_capacity(nx * ny * nz);
    for x in 0..nx {
        for y in 0..ny {
            for z in 0..nz {
                v.push(test_field(x, y, z));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfft::complex::max_abs_diff;
    use cfft::dft::dft;

    /// Brute-force 3-D DFT by three naive sweeps.
    fn fft3_naive(data: &[Complex64], nx: usize, ny: usize, nz: usize) -> Vec<Complex64> {
        let idx = |x: usize, y: usize, z: usize| (x * ny + y) * nz + z;
        let mut a = data.to_vec();
        // z sweep
        for x in 0..nx {
            for y in 0..ny {
                let line: Vec<Complex64> = (0..nz).map(|z| a[idx(x, y, z)]).collect();
                let out = dft(&line, Direction::Forward);
                for z in 0..nz {
                    a[idx(x, y, z)] = out[z];
                }
            }
        }
        // y sweep
        for x in 0..nx {
            for z in 0..nz {
                let line: Vec<Complex64> = (0..ny).map(|y| a[idx(x, y, z)]).collect();
                let out = dft(&line, Direction::Forward);
                for y in 0..ny {
                    a[idx(x, y, z)] = out[y];
                }
            }
        }
        // x sweep
        for y in 0..ny {
            for z in 0..nz {
                let line: Vec<Complex64> = (0..nx).map(|x| a[idx(x, y, z)]).collect();
                let out = dft(&line, Direction::Forward);
                for x in 0..nx {
                    a[idx(x, y, z)] = out[x];
                }
            }
        }
        a
    }

    #[test]
    fn matches_naive_3d_dft() {
        for (nx, ny, nz) in [(4, 4, 4), (8, 4, 2), (3, 5, 7), (6, 6, 6), (16, 8, 12)] {
            let x = full_test_array(nx, ny, nz);
            let mut got = x.clone();
            fft3_serial(&mut got, nx, ny, nz, Direction::Forward);
            let want = fft3_naive(&x, nx, ny, nz);
            let err = max_abs_diff(&got, &want);
            assert!(
                err < 1e-8 * (nx * ny * nz) as f64,
                "{nx}x{ny}x{nz} err={err}"
            );
        }
    }

    #[test]
    fn round_trip_scales_by_volume() {
        let (nx, ny, nz) = (8, 6, 10);
        let x = full_test_array(nx, ny, nz);
        let mut v = x.clone();
        fft3_serial(&mut v, nx, ny, nz, Direction::Forward);
        fft3_serial(&mut v, nx, ny, nz, Direction::Backward);
        let n = (nx * ny * nz) as f64;
        let rescaled: Vec<Complex64> = v.into_iter().map(|z| z / n).collect();
        assert!(max_abs_diff(&rescaled, &x) < 1e-9 * n);
    }

    #[test]
    fn dc_bin_is_the_sum() {
        let (nx, ny, nz) = (4, 4, 4);
        let x = full_test_array(nx, ny, nz);
        let sum: Complex64 = x.iter().copied().sum();
        let mut v = x;
        fft3_serial(&mut v, nx, ny, nz, Direction::Forward);
        assert!((v[0] - sum).abs() < 1e-9);
    }

    #[test]
    fn test_field_is_deterministic_and_spread() {
        assert_eq!(test_field(1, 2, 3), test_field(1, 2, 3));
        assert_ne!(test_field(1, 2, 3), test_field(3, 2, 1));
        let v = full_test_array(8, 8, 8);
        let mean: f64 = v.iter().map(|z| z.re).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.2, "mean={mean}");
    }
}
