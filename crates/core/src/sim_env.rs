//! Simulated execution backend: the same pipeline schedule running against
//! [`simnet`]'s calibrated cost models.
//!
//! This backend regenerates the paper's evaluation at full scale (up to
//! p = 256, N = 2048³) without the data: compute phases charge the machine
//! model, all-to-alls run the manual-progression round model, and the
//! breakdown accounting mirrors Figure 8's categories.

use crate::breakdown::{RunStats, StepTimes};
use crate::decomp::Decomp;
use crate::error::Error;
use crate::params::{ProblemSpec, ThParams, TuningParams};
use crate::pipeline::{run_new, run_th, OverlapEnv};
use crate::real_env::Variant;
use crate::trace::{EventKind, TraceEvent};
use simnet::model::{TransposeCost, ELEM_BYTES};
use simnet::{run_sim, OpId, PlanId, Platform, SimRank};

/// One rank's view of the simulated pipeline.
struct SimEnv<'a, 'b> {
    sim: &'a mut SimRank,
    spec: ProblemSpec,
    params: TuningParams,
    decomp: &'b Decomp,
    transpose_cost: TransposeCost,
    /// Skip FFTz and Transpose — the §4.4 tuning-speed technique ("the AH
    /// client does not execute FFTz and Transpose during auto-tuning").
    skip_fixed_steps: bool,
    /// Persistent per-tile all-to-all plans shared across repeated
    /// executions: inited lazily at a tile's first post (paying
    /// `post_overhead` once), started with zero setup thereafter. `None`
    /// posts ad-hoc collectives (the one-shot path).
    plans: Option<&'b mut Vec<Option<PlanId>>>,
    steps: StepTimes,
    /// Event log for the timeline view, virtual-time stamped; `None`
    /// disables collection (and the rank's poll log stays off).
    events: Option<Vec<TraceEvent>>,
}

impl SimEnv<'_, '_> {
    /// Records a span from `start` to the current virtual time.
    fn record(&mut self, kind: EventKind, start: f64) {
        if let Some(ev) = &mut self.events {
            ev.push(TraceEvent {
                start,
                end: self.sim.now().as_secs_f64(),
                kind,
            });
        }
    }

    /// Converts the rank's freshly logged polls into `Test` events, mapping
    /// each polled op back to its tile via the in-flight window.
    fn drain_polls(&mut self, inflight: &[(usize, OpId)]) {
        if self.events.is_none() {
            return;
        }
        let polls = self.sim.take_poll_log();
        let events = self.events.as_mut().expect("checked above");
        for rec in polls {
            let tile = inflight
                .iter()
                .find(|&&(_, op)| op == rec.op)
                .map(|&(t, _)| t)
                .expect("polled op must be in the in-flight window");
            events.push(TraceEvent {
                start: rec.start.as_secs_f64(),
                end: rec.end.as_secs_f64(),
                kind: EventKind::Test {
                    tile,
                    completed: rec.completed,
                },
            });
        }
    }
}

impl SimEnv<'_, '_> {
    fn nxl(&self) -> usize {
        self.decomp.x.count(self.sim.rank())
    }

    fn nyl(&self) -> usize {
        self.decomp.y.count(self.sim.rank())
    }

    fn tile_len(&self, tile: usize) -> usize {
        let z0 = tile * self.params.t;
        (z0 + self.params.t).min(self.spec.nz) - z0
    }

    fn bytes_per_peer(&self, tile: usize) -> u64 {
        // Uniform-block approximation of the v-variant: peers receive the
        // average y-share. Exact for the divisible cases the paper reports.
        let tz = self.tile_len(tile) as u64;
        tz * self.nxl() as u64 * (self.spec.ny / self.spec.p.max(1)) as u64 * ELEM_BYTES
    }

    /// Modeled duration of an intra-rank batched kernel spread over `Th`
    /// workers: perfect scaling. Deliberately optimistic — the real kernels
    /// are memory-bound, so this is the model's upper bound on what the
    /// `threads` knob can buy; the real backend reports what it actually
    /// bought.
    fn kernel_time(&self, secs: f64) -> f64 {
        secs / self.params.threads.max(1) as f64
    }

    /// Runs one modeled compute phase with polls, splitting the elapsed
    /// virtual time between the phase's category and Test.
    fn phase(&mut self, secs: f64, polls: u32, inflight: &[(usize, OpId)]) -> (f64, f64) {
        let ops: Vec<OpId> = inflight.iter().map(|&(_, op)| op).collect();
        let t0 = self.sim.now();
        let test_cost = self.sim.compute_with_polls(secs, polls, &ops);
        let elapsed = (self.sim.now() - t0).as_secs_f64();
        let test = test_cost.as_secs_f64();
        (elapsed - test, test)
    }
}

impl OverlapEnv for SimEnv<'_, '_> {
    type Req = OpId;

    fn num_tiles(&self) -> usize {
        self.params.tiles(&self.spec)
    }

    fn window(&self) -> usize {
        self.params.w
    }

    fn fftz_transpose(&mut self) {
        if self.skip_fixed_steps {
            return;
        }
        let lines = (self.nxl() * self.spec.ny) as u64;
        let m = &self.sim.platform().machine;
        let fftz = self.kernel_time(m.fft_batch(self.spec.nz, lines));
        let bytes = self.nxl() as u64 * self.spec.ny as u64 * self.spec.nz as u64 * ELEM_BYTES;
        let transpose = self.kernel_time(m.transpose(bytes, self.transpose_cost));
        let t0 = self.sim.now().as_secs_f64();
        self.sim.compute(fftz);
        self.record(EventKind::Fftz, t0);
        let t0 = self.sim.now().as_secs_f64();
        self.sim.compute(transpose);
        self.record(EventKind::Transpose, t0);
        self.steps.fftz += fftz;
        self.steps.transpose += transpose;
    }

    fn ffty_pack(&mut self, tile: usize, inflight: &mut [(usize, OpId)]) -> Result<(), Error> {
        let tz = self.tile_len(tile);
        let m = self.sim.platform().machine.clone();
        let nxl = self.nxl();
        let ffty = self.kernel_time(m.fft_batch(self.spec.ny, (nxl * tz) as u64));
        let t0 = self.sim.now().as_secs_f64();
        let (c, t) = self.phase(ffty, self.params.fy, inflight);
        self.record(EventKind::Ffty { tile, subtile: 0 }, t0);
        self.drain_polls(inflight);
        self.steps.ffty += c;
        self.steps.test += t;

        let tile_bytes = (tz * nxl * self.spec.ny) as u64 * ELEM_BYTES;
        let subtile_bytes =
            (self.params.px.min(nxl.max(1)) * self.spec.ny * self.params.pz.min(tz.max(1))) as u64
                * ELEM_BYTES;
        // The innermost contiguous run of Pack is the per-destination y
        // share.
        let run_bytes = (self.spec.ny / self.spec.p.max(1)).max(1) as u64 * ELEM_BYTES;
        let pack = self.kernel_time(m.pack(tile_bytes, subtile_bytes, run_bytes));
        let t0 = self.sim.now().as_secs_f64();
        let (c, t) = self.phase(pack, self.params.fp, inflight);
        self.record(EventKind::Pack { tile, subtile: 0 }, t0);
        self.drain_polls(inflight);
        self.steps.pack += c;
        self.steps.test += t;
        Ok(())
    }

    fn post_a2a(&mut self, tile: usize) -> OpId {
        let per_peer = self.bytes_per_peer(tile);
        let t0 = self.sim.now();
        let op = match self.plans.as_mut() {
            Some(plans) => {
                if plans[tile].is_none() {
                    plans[tile] = Some(self.sim.alltoall_init(per_peer));
                }
                let plan = plans[tile].expect("just initialised");
                self.sim.start(plan)
            }
            None => self.sim.post_alltoall(per_peer),
        };
        self.steps.ialltoall += (self.sim.now() - t0).as_secs_f64();
        let bytes = per_peer * self.spec.p.saturating_sub(1) as u64;
        self.record(EventKind::PostA2a { tile, bytes }, t0.as_secs_f64());
        op
    }

    fn wait(&mut self, tile: usize, req: OpId) -> Result<(), (OpId, Error)> {
        // The simulator charges fault costs (stragglers, degraded links)
        // into the round model, so waits always complete — slower, never
        // wedged. Stall semantics are the real backend's department.
        let t0 = self.sim.now();
        self.sim.wait(req);
        self.steps.wait += (self.sim.now() - t0).as_secs_f64();
        self.record(EventKind::Wait { tile }, t0.as_secs_f64());
        Ok(())
    }

    fn unpack_fftx(&mut self, tile: usize, inflight: &mut [(usize, OpId)]) -> Result<(), Error> {
        let tz = self.tile_len(tile);
        let m = self.sim.platform().machine.clone();
        let nyl = self.nyl();

        let tile_bytes = (tz * nyl * self.spec.nx) as u64 * ELEM_BYTES;
        let subtile_bytes =
            (self.spec.nx * self.params.uy.min(nyl.max(1)) * self.params.uz.min(tz.max(1))) as u64
                * ELEM_BYTES;
        // Unpack reads per-source x runs (stride nyl between elements), so
        // the effective contiguous run is one element per read burst but a
        // whole x-slab per source in the write stream; model the read side.
        let run_bytes = (self.spec.nx / self.spec.p.max(1)).max(1) as u64 * ELEM_BYTES;
        let unpack = self.kernel_time(m.pack(tile_bytes, subtile_bytes, run_bytes));
        let t0 = self.sim.now().as_secs_f64();
        let (c, t) = self.phase(unpack, self.params.fu, inflight);
        self.record(EventKind::Unpack { tile, subtile: 0 }, t0);
        self.drain_polls(inflight);
        self.steps.unpack += c;
        self.steps.test += t;

        let fftx = self.kernel_time(m.fft_batch(self.spec.nx, (nyl * tz) as u64));
        let t0 = self.sim.now().as_secs_f64();
        let (c, t) = self.phase(fftx, self.params.fx, inflight);
        self.record(EventKind::Fftx { tile, subtile: 0 }, t0);
        self.drain_polls(inflight);
        self.steps.fftx += c;
        self.steps.test += t;
        Ok(())
    }

    fn threads(&self) -> usize {
        self.params.threads
    }
}

/// Aggregated result of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// 3-D FFT time: the slowest rank's completion (what the paper's
    /// tables report).
    pub time: f64,
    /// Rank-0 per-step breakdown (ranks are symmetric under the model).
    pub steps: StepTimes,
    /// Per-rank statistics.
    pub per_rank: Vec<RunStats>,
    /// Collective setup charges (`post_overhead`) rank 0 paid during this
    /// run. Ad-hoc posts pay one per tile; through the persistent path
    /// ([`fft3_simulated_repeated`]) only the first execution pays, and
    /// every later execution reports zero.
    pub setup_charges: u64,
}

/// Effective parameters and transpose tier per variant (mirrors
/// `real_env::fft3_dist`).
fn resolve(
    spec: &ProblemSpec,
    variant: Variant,
    params: TuningParams,
) -> (TuningParams, TransposeCost) {
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    match variant {
        Variant::New => {
            let style = if spec.square_xy() {
                TransposeCost::Fast
            } else {
                TransposeCost::Generic
            };
            (params, style)
        }
        Variant::Th => {
            let p = TuningParams {
                t: params.t,
                w: params.w,
                px: decomp.x.max_count().max(1),
                pz: params.t,
                uy: decomp.y.max_count().max(1),
                uz: params.t,
                fy: params.fy,
                fp: params.fp,
                fu: 0,
                fx: 0,
                threads: params.threads.max(1),
            };
            (p, TransposeCost::Naive)
        }
        Variant::Fftw => {
            // FFTW's internal copy loops are cache-blocked (its planner
            // picks good buffer sizes), so the baseline gets seed-quality
            // sub-tiles; what it lacks is overlap and the §3.5 fast
            // transpose.
            let seed = TuningParams::seed(spec);
            let p = TuningParams {
                t: spec.nz,
                w: 0,
                px: seed.px,
                pz: seed.pz,
                uy: seed.uy,
                uz: seed.uz,
                fy: 0,
                fp: 0,
                fu: 0,
                fx: 0,
                threads: params.threads.max(1),
            };
            // Figure 8 shows NEW-0's Transpose equal to NEW's, and the
            // paper treats FFTW ≈ NEW-0; FFTW's rearrangement is equally
            // optimised, so it gets the same tier as NEW.
            let style = if spec.square_xy() {
                TransposeCost::Fast
            } else {
                TransposeCost::Generic
            };
            (p, style)
        }
    }
}

/// Simulates one distributed 3-D FFT and returns timing results.
///
/// Set `skip_fixed_steps` to model the tuning objective of §4.4 (FFTz and
/// Transpose excluded, as in Figure 5); leave it `false` for end-to-end
/// times (Table 2).
pub fn fft3_simulated(
    platform: Platform,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    skip_fixed_steps: bool,
) -> SimReport {
    fft3_simulated_with(platform, spec, variant, params, skip_fixed_steps, None)
}

/// Fallible [`fft3_simulated`]: validates the tuning parameters up front
/// (for [`Variant::New`], where they are taken literally) and reports an
/// infeasible configuration as [`Error::InfeasibleParams`] instead of
/// producing a garbage cost estimate. TH and FFTW rewrite the parameters
/// themselves, so only the shared tile size is checked there.
pub fn try_fft3_simulated(
    platform: Platform,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    skip_fixed_steps: bool,
) -> Result<SimReport, Error> {
    for (axis, n) in [("nx", spec.nx), ("ny", spec.ny), ("nz", spec.nz)] {
        if n == 0 {
            return Err(Error::from(crate::params::ParamError::ZeroExtent(axis)));
        }
    }
    match variant {
        Variant::New => {
            if params.w == 0 {
                params.validate_without_window(&spec)
            } else {
                params.validate(&spec)
            }
            .map_err(Error::from)?;
        }
        Variant::Th | Variant::Fftw => {
            if params.t == 0 || params.t > spec.nz.max(1) {
                return Err(Error::from(crate::params::ParamError::TileSize(params.t)));
            }
        }
    }
    Ok(fft3_simulated(
        platform,
        spec,
        variant,
        params,
        skip_fixed_steps,
    ))
}

/// [`fft3_simulated`] with an explicit transpose-cost tier — the hook the
/// ablation studies use to e.g. deny NEW the §3.5 fast path.
pub fn fft3_simulated_with(
    platform: Platform,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    skip_fixed_steps: bool,
    transpose_override: Option<TransposeCost>,
) -> SimReport {
    simulate(
        platform,
        spec,
        variant,
        params,
        skip_fixed_steps,
        transpose_override,
        false,
    )
    .0
}

/// [`fft3_simulated`] additionally returning every rank's per-tile event
/// timeline (virtual-time stamped) — the data behind the Figure 3
/// visualisation and the overlap-efficiency summary (see [`crate::trace`]).
pub fn fft3_simulated_traced(
    platform: Platform,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
) -> (SimReport, Vec<Vec<TraceEvent>>) {
    simulate(platform, spec, variant, params, false, None, true)
}

#[allow(clippy::too_many_arguments)]
fn simulate(
    platform: Platform,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    skip_fixed_steps: bool,
    transpose_override: Option<TransposeCost>,
    trace: bool,
) -> (SimReport, Vec<Vec<TraceEvent>>) {
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    let (eff, mut tcost) = resolve(&spec, variant, params);
    if let Some(t) = transpose_override {
        tcost = t;
    }
    let results = run_sim(platform, spec.p, move |sim| {
        let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
        let start = sim.now();
        let tests0 = sim.test_calls();
        let setups0 = sim.setup_charges();
        if trace {
            sim.enable_poll_log();
        }
        let mut env = SimEnv {
            sim,
            spec,
            params: eff,
            decomp: &decomp,
            transpose_cost: tcost,
            skip_fixed_steps,
            plans: None,
            steps: StepTimes::default(),
            events: if trace { Some(Vec::new()) } else { None },
        };
        match variant {
            Variant::Th => run_th(&mut env),
            _ => run_new(&mut env),
        }
        let steps = env.steps;
        let events = env.events.take().unwrap_or_default();
        (
            RunStats {
                steps,
                elapsed: (sim.now() - start).as_secs_f64(),
                tests: sim.test_calls() - tests0,
            },
            sim.setup_charges() - setups0,
            events,
        )
    });
    let _ = decomp;
    let mut per_rank = Vec::with_capacity(results.len());
    let mut events = Vec::with_capacity(results.len());
    let mut setup_charges = 0;
    for (i, (stats, setups, ev)) in results.into_iter().enumerate() {
        if i == 0 {
            setup_charges = setups;
        }
        per_rank.push(stats);
        events.push(ev);
    }
    let time = per_rank.iter().map(|r| r.elapsed).fold(0.0, f64::max);
    (
        SimReport {
            time,
            steps: per_rank[0].steps,
            per_rank,
            setup_charges,
        },
        events,
    )
}

/// Simulates `reps` back-to-back executions of the same transform over
/// **persistent** per-tile all-to-all plans (the setup-once / execute-many
/// path), returning one report per execution.
///
/// The first execution initialises each tile's plan as it is first posted,
/// paying the post overhead exactly as an ad-hoc run would; every later
/// execution starts the registered plans with zero setup cost —
/// [`SimReport::setup_charges`] is `k = ⌈Nz/T⌉` for execution 0 and `0`
/// from execution 1 on.
pub fn fft3_simulated_repeated(
    platform: Platform,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    skip_fixed_steps: bool,
    reps: usize,
) -> Vec<SimReport> {
    let (eff, tcost) = resolve(&spec, variant, params);
    let k = eff.tiles(&spec);
    let results = run_sim(platform, spec.p, move |sim| {
        let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
        let mut plans: Vec<Option<PlanId>> = vec![None; k];
        let mut iterations = Vec::with_capacity(reps);
        for _ in 0..reps {
            let start = sim.now();
            let tests0 = sim.test_calls();
            let setups0 = sim.setup_charges();
            let mut env = SimEnv {
                sim,
                spec,
                params: eff,
                decomp: &decomp,
                transpose_cost: tcost,
                skip_fixed_steps,
                plans: Some(&mut plans),
                steps: StepTimes::default(),
                events: None,
            };
            match variant {
                Variant::Th => run_th(&mut env),
                _ => run_new(&mut env),
            }
            let steps = env.steps;
            iterations.push((
                RunStats {
                    steps,
                    elapsed: (sim.now() - start).as_secs_f64(),
                    tests: sim.test_calls() - tests0,
                },
                sim.setup_charges() - setups0,
            ));
        }
        iterations
    });
    (0..reps)
        .map(|it| {
            let per_rank: Vec<RunStats> = results.iter().map(|r| r[it].0.clone()).collect();
            let time = per_rank.iter().map(|r| r.elapsed).fold(0.0, f64::max);
            SimReport {
                time,
                steps: per_rank[0].steps,
                per_rank,
                setup_charges: results[0][it].1,
            }
        })
        .collect()
}

/// Simulates the TH comparator from its three-parameter space.
pub fn th_simulated(
    platform: Platform,
    spec: ProblemSpec,
    th: ThParams,
    skip_fixed_steps: bool,
) -> SimReport {
    let params = TuningParams {
        t: th.t,
        w: th.w,
        px: 1,
        pz: 1,
        uy: 1,
        uz: 1,
        // TH's single F is spent during the overlappable FFTy+Pack phases;
        // split evenly as Hoefler's kernel interleaves tests with both.
        fy: th.f / 2,
        fp: th.f - th.f / 2,
        fu: 0,
        fx: 0,
        threads: 1,
    };
    fft3_simulated(platform, spec, Variant::Th, params, skip_fixed_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::model::{hopper, umd_cluster};

    fn paper_spec() -> ProblemSpec {
        ProblemSpec::cube(256, 16)
    }

    #[test]
    fn new_beats_fftw_on_umd_model() {
        let spec = paper_spec();
        let seed = TuningParams::seed(&spec);
        let fftw = fft3_simulated(umd_cluster(), spec, Variant::Fftw, seed, false);
        let new = fft3_simulated(umd_cluster(), spec, Variant::New, seed, false);
        assert!(
            new.time < fftw.time,
            "overlap must help on the slow network: NEW {:.3}s vs FFTW {:.3}s",
            new.time,
            fftw.time
        );
    }

    #[test]
    fn overlap_shrinks_wait_time() {
        let spec = paper_spec();
        let seed = TuningParams::seed(&spec);
        let new = fft3_simulated(umd_cluster(), spec, Variant::New, seed, false);
        let new0 = fft3_simulated(
            umd_cluster(),
            spec,
            Variant::New,
            seed.without_overlap(),
            false,
        );
        assert!(
            new.steps.wait < new0.steps.wait * 0.6,
            "NEW wait {:.3}s must be well below NEW-0 wait {:.3}s",
            new.steps.wait,
            new0.steps.wait
        );
    }

    #[test]
    fn th_waits_longer_than_new() {
        let spec = paper_spec();
        let seed = TuningParams::seed(&spec);
        let new = fft3_simulated(umd_cluster(), spec, Variant::New, seed, false);
        let th = th_simulated(umd_cluster(), spec, ThParams::seed(&spec), false);
        assert!(
            th.steps.wait > new.steps.wait,
            "TH does not overlap Unpack/FFTx, so its Wait must exceed NEW's"
        );
        assert!(th.time > new.time);
    }

    #[test]
    fn speedup_is_smaller_on_the_fast_network() {
        let spec = paper_spec();
        let seed = TuningParams::seed(&spec);
        let umd_fftw = fft3_simulated(umd_cluster(), spec, Variant::Fftw, seed, false).time;
        let umd_new = fft3_simulated(umd_cluster(), spec, Variant::New, seed, false).time;
        let hop_fftw = fft3_simulated(hopper(), spec, Variant::Fftw, seed, false).time;
        let hop_new = fft3_simulated(hopper(), spec, Variant::New, seed, false).time;
        let umd_speedup = umd_fftw / umd_new;
        let hop_speedup = hop_fftw / hop_new;
        assert!(
            umd_speedup > hop_speedup,
            "Gemini's fast network leaves less to hide: UMD {umd_speedup:.2}× vs Hopper {hop_speedup:.2}×"
        );
    }

    #[test]
    fn skip_fixed_steps_removes_fftz_and_transpose() {
        let spec = paper_spec();
        let seed = TuningParams::seed(&spec);
        let full = fft3_simulated(umd_cluster(), spec, Variant::New, seed, false);
        let skipped = fft3_simulated(umd_cluster(), spec, Variant::New, seed, true);
        assert_eq!(skipped.steps.fftz, 0.0);
        assert_eq!(skipped.steps.transpose, 0.0);
        assert!(skipped.time < full.time);
        let fixed = full.steps.fftz + full.steps.transpose;
        assert!((full.time - skipped.time - fixed).abs() < 0.25 * fixed + 5e-3);
    }

    #[test]
    fn repeated_transforms_pay_setup_once() {
        let spec = ProblemSpec::cube(128, 8);
        let seed = TuningParams::seed(&spec);
        let k = seed.tiles(&spec) as u64;
        let reps = fft3_simulated_repeated(umd_cluster(), spec, Variant::New, seed, false, 4);
        assert_eq!(reps.len(), 4);
        assert_eq!(reps[0].setup_charges, k, "first execution pays per tile");
        for (i, r) in reps.iter().enumerate().skip(1) {
            assert_eq!(r.setup_charges, 0, "execution {i} must do zero setup");
        }
        // Steady-state executions are no slower than the first (they skip
        // the per-tile post overhead; everything else is identical).
        for r in &reps[1..] {
            assert!(r.time <= reps[0].time + 1e-12);
        }
        // And the one-shot path keeps paying k on every call.
        let one = fft3_simulated(umd_cluster(), spec, Variant::New, seed, false);
        assert_eq!(one.setup_charges, k);
    }

    #[test]
    fn repeated_transforms_are_deterministic_and_stable() {
        let spec = ProblemSpec::cube(64, 4);
        let seed = TuningParams::seed(&spec);
        let a = fft3_simulated_repeated(hopper(), spec, Variant::New, seed, true, 3);
        let b = fft3_simulated_repeated(hopper(), spec, Variant::New, seed, true, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.steps, y.steps);
        }
        // Executions 2 and 3 run the identical zero-setup schedule, so the
        // virtual-time model gives them identical durations.
        assert_eq!(a[1].time, a[2].time);
    }

    #[test]
    fn simulation_is_deterministic() {
        let spec = ProblemSpec::cube(128, 8);
        let seed = TuningParams::seed(&spec);
        let a = fft3_simulated(hopper(), spec, Variant::New, seed, false);
        let b = fft3_simulated(hopper(), spec, Variant::New, seed, false);
        assert_eq!(a.time, b.time);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn parameters_change_the_simulated_time() {
        // The whole point of auto-tuning: configurations differ materially.
        let spec = paper_spec();
        let seed = TuningParams::seed(&spec);
        let a = fft3_simulated(umd_cluster(), spec, Variant::New, seed, true).time;
        let worse = TuningParams {
            t: 1,
            w: 1,
            fy: 1,
            fp: 0,
            fu: 0,
            fx: 0,
            ..seed
        };
        let b = fft3_simulated(umd_cluster(), spec, Variant::New, worse, true).time;
        assert!(
            b > a * 1.2,
            "tiny tiles with no polling must be much slower: {a:.3} vs {b:.3}"
        );
    }
}
