//! Multi-tenant FFT service: admission control, deadlines, and tenant
//! fault isolation (DESIGN.md §19).
//!
//! Every robustness layer so far protects **one transform at a time**.
//! This module is the job-queue front end above them: tenants submit
//! [`JobSpec`]s (problem size, direction, priority, deadline), and a
//! deterministic discrete-event scheduler co-schedules the resulting
//! overlapped pipelines over one simulated cluster. Concurrent jobs
//! contend for the same links — each in-flight all-to-all drains at
//! [`simnet::model::NetModel::effective_bw`] with the *cluster-wide*
//! number of active exchanges, so admitting one more job degrades every
//! tenant's β_eff, exactly as §4 of the paper observes for co-scheduled
//! windows.
//!
//! The robustness core:
//!
//! * **Admission control** — completion time is predicted from the same
//!   [`SlabCosts`]/pencil cost tables the pipelines themselves are priced
//!   with, so the controller can never disagree with the simulation it
//!   gates. Jobs that cannot meet their deadline, or that would overflow
//!   their tenant's bounded queue, are shed with a typed
//!   [`Admission::Rejected`] reason instead of being accepted and killed
//!   later (backpressure, not unbounded growth).
//! * **Deficit round-robin fairness** — the cluster's compute is arbitrated
//!   per tenant with a deficit counter, so a tenant flooding the queue
//!   cannot starve another; priorities order jobs *within* a tenant.
//! * **Deadline watchdogs** — an admitted job that overruns its deadline
//!   (admission is a prediction, not a guarantee) is cancelled with a typed
//!   reason and its in-flight exchanges are torn down immediately,
//!   returning bandwidth to everyone else.
//! * **Retry with [`Backoff`]** — a job killed by its own injected
//!   [`FaultPlan`] crash is retried after a deterministic, jittered pause
//!   (the same pure [`Backoff::park`] arithmetic `mpicheck` uses), up to
//!   `max_attempts`.
//! * **Tenant isolation** — one tenant's faults are scoped to its own
//!   jobs ([`FaultPlan::scoped`]); on the data layer
//!   ([`Service::run_with_data`]) every other tenant's spectrum must stay
//!   bit-exact vs serial, which `tests/service.rs` pins.
//!
//! Same-geometry jobs share plan state: the first job of a geometry pays
//! the per-tile exchange-setup overhead, later ones ride the persistent
//! plan (§15's setup-once/execute-many, lifted to the service layer), the
//! scheduler-level analogue of sharing `PlanCache`/`TransformPlanCache`.
//! A tenant's same-geometry job train can also be submitted as one fused
//! [`JobSpec::arrays`] batch, which routes through the
//! [`crate::multi`] inter-array pipeline shape.
//!
//! Everything on the timing layer is a pure function of (jobs, config):
//! no wall clock, no hash-map iteration, no thread scheduling — the same
//! submission always yields the same [`ServiceReport`].

use crate::decomp::{auto_select, Decomposition};
use crate::error::Error;
use crate::multi::SlabCosts;
use crate::params::{ProblemSpec, TuningParams};
use crate::pencil::{compare_pencil_with_serial, pencil_seed, pencil_test_input, try_fft3_pencil};
use crate::real_env::{compare_with_serial, local_test_slab, try_fft3_dist, Variant};
use crate::recover::{run_recoverable, RecoverConfig, ReplicaSource};
use crate::serial::{fft3_serial, full_test_array};
use crate::trace::NoopRecorder;
use cfft::planner::Rigor;
use cfft::{Complex64, Direction};
use faultplan::FaultKind;
use mpisim::{Backoff, FaultPlan};
use simnet::model::{MachineModel, NetModel, ELEM_BYTES};
use simnet::Platform;
use std::sync::Arc;

/// Absolute tolerance for event-time comparisons (virtual seconds).
const EPS: f64 = 1e-12;
/// Residual fluid volume (bytes) below which a flow counts as drained.
const BYTE_EPS: f64 = 1e-6;

// ---------------------------------------------------------------------------
// Public job / outcome types
// ---------------------------------------------------------------------------

/// One tenant's transform request.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Submitting tenant.
    pub tenant: usize,
    /// Problem geometry (`spec.p` is ignored; the service's rank count
    /// applies).
    pub spec: ProblemSpec,
    /// Transform direction.
    pub dir: Direction,
    /// Priority within the tenant *and* the admission class: under
    /// overload, lower-priority jobs are shed first. Higher is better.
    pub priority: u8,
    /// Relative deadline in virtual seconds after submission; `None`
    /// accepts any completion time.
    pub deadline: Option<f64>,
    /// Submission time (virtual seconds from the epoch of the batch).
    pub arrival: f64,
    /// Arrays in this job train (> 1 routes through the fused multi-array
    /// pipeline shape of [`crate::multi`]).
    pub arrays: usize,
    /// Faults this job brings with it (crashes, stragglers, slow links) —
    /// scoped to this job alone, never to other tenants.
    pub faults: FaultPlan,
}

impl JobSpec {
    /// A plain job: priority 0, no deadline, arrival at 0, one array, no
    /// faults.
    pub fn new(tenant: usize, spec: ProblemSpec, dir: Direction) -> Self {
        JobSpec {
            tenant,
            spec,
            dir,
            priority: 0,
            deadline: None,
            arrival: 0.0,
            arrays: 1,
            faults: FaultPlan::none(),
        }
    }

    /// Sets the priority (higher survives overload longer).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the relative deadline.
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the arrival time.
    pub fn at(mut self, arrival: f64) -> Self {
        self.arrival = arrival;
        self
    }

    /// Submits a fused train of `arrays` same-geometry transforms.
    pub fn with_arrays(mut self, arrays: usize) -> Self {
        self.arrays = arrays;
        self
    }

    /// Attaches this job's fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Why the admission controller refused a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectReason {
    /// The job can never run: invalid geometry or tuning parameters.
    Infeasible(Error),
    /// The tenant's bounded queue is full — backpressure, resubmit later.
    QueueFull {
        /// The per-tenant live-job bound that was hit.
        limit: usize,
    },
    /// The cost model predicts the job cannot meet its deadline given the
    /// backlog of work at its priority or above.
    DeadlineUnmeetable {
        /// Predicted completion (virtual seconds after submission).
        predicted: f64,
        /// The deadline that cannot be met.
        deadline: f64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Infeasible(e) => write!(f, "infeasible job: {e}"),
            RejectReason::QueueFull { limit } => {
                write!(f, "tenant queue full ({limit} live jobs)")
            }
            RejectReason::DeadlineUnmeetable {
                predicted,
                deadline,
            } => write!(
                f,
                "deadline unmeetable: predicted {predicted:.3}s > deadline {deadline:.3}s"
            ),
        }
    }
}

/// Why a previously admitted job was cancelled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CancelReason {
    /// The deadline watchdog fired: the job overran its deadline and its
    /// bandwidth was reclaimed.
    DeadlineExceeded {
        /// The relative deadline that was exceeded.
        deadline: f64,
    },
    /// The job's faults killed every allowed attempt; carries the last
    /// attempt's error.
    RetriesExhausted(Error),
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::DeadlineExceeded { deadline } => {
                write!(f, "deadline of {deadline:.3}s exceeded")
            }
            CancelReason::RetriesExhausted(e) => write!(f, "retries exhausted: {e}"),
        }
    }
}

/// The admission controller's verdict for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Admitted; carries the predicted completion (virtual seconds after
    /// submission) the decision was based on.
    Accepted {
        /// Predicted completion time used for the decision.
        predicted: f64,
    },
    /// Shed at submission with a typed reason.
    Rejected {
        /// Why the job was not admitted.
        reason: RejectReason,
    },
}

/// Terminal state of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobOutcome {
    /// Shed by the admission controller.
    Rejected(RejectReason),
    /// Ran to completion.
    Completed {
        /// Flow completion time: finish − submission (virtual seconds).
        fct: f64,
    },
    /// Admitted, then cancelled.
    Cancelled {
        /// Virtual time of the cancellation.
        at: f64,
        /// Why it was cancelled.
        reason: CancelReason,
    },
}

impl JobOutcome {
    /// Flow completion time for completed jobs.
    pub fn fct(&self) -> Option<f64> {
        match self {
            JobOutcome::Completed { fct } => Some(*fct),
            _ => None,
        }
    }

    /// `true` for [`JobOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }
}

impl std::fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobOutcome::Rejected(r) => write!(f, "rejected: {r}"),
            JobOutcome::Completed { fct } => write!(f, "completed in {fct:.3}s"),
            JobOutcome::Cancelled { at, reason } => {
                write!(f, "cancelled at {at:.3}s: {reason}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration and reports
// ---------------------------------------------------------------------------

/// Service-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The simulated cluster every job runs on.
    pub platform: Platform,
    /// Ranks of the shared cluster; every job is decomposed over all of
    /// them (`decomp::auto_select` picks slab or pencil per geometry).
    pub ranks: usize,
    /// Per-tenant bound on live (admitted, unfinished) jobs; submissions
    /// past it are shed with [`RejectReason::QueueFull`].
    pub queue_limit: usize,
    /// Deficit-round-robin quantum in CPU seconds per tenant turn.
    pub quantum: f64,
    /// Safety factor on predicted completion times (> 1 sheds earlier).
    pub headroom: f64,
    /// Transform attempts per job before [`CancelReason::RetriesExhausted`].
    pub max_attempts: u32,
    /// Retry pacing for fault-killed jobs; its deterministic jitter
    /// ([`Backoff::park`]) spaces competing retries apart.
    pub backoff: Backoff,
}

impl ServiceConfig {
    /// Defaults: queue limit 8, 25 ms quantum, 1.2× headroom, 3 attempts,
    /// the default seeded backoff.
    pub fn new(platform: Platform, ranks: usize) -> Self {
        ServiceConfig {
            platform,
            ranks,
            queue_limit: 8,
            quantum: 25e-3,
            headroom: 1.2,
            max_attempts: 3,
            backoff: Backoff::default().with_seed(0x5eed_cafe),
        }
    }
}

/// What one job would cost running alone on the cluster (cold plan
/// caches): the baseline FCT slowdowns are measured against, and the byte
/// total the conservation check compares with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsolatedRun {
    /// Completion time with no other tenant present (virtual seconds).
    pub time: f64,
    /// Logical bytes one rank puts on the wire, over all attempts.
    pub bytes: u64,
    /// Attempts consumed (1 unless the job's own faults kill it).
    pub attempts: u32,
}

/// Per-job accounting in a [`ServiceReport`].
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Index into the submitted batch.
    pub job: usize,
    /// Submitting tenant.
    pub tenant: usize,
    /// Job priority.
    pub priority: u8,
    /// Submission time.
    pub submitted: f64,
    /// Terminal state.
    pub outcome: JobOutcome,
    /// Virtual time the job reached its terminal state (`None` for
    /// rejections, which never start).
    pub finished_at: Option<f64>,
    /// Isolated-run baseline (zeroed for infeasible jobs).
    pub isolated: f64,
    /// Isolated-run wire bytes.
    pub isolated_bytes: u64,
    /// Wire bytes actually exchanged in the shared run.
    pub bytes: u64,
    /// Attempts consumed.
    pub attempts: u32,
    /// Decomposition `auto_select` chose (`None` if infeasible).
    pub decomp: Option<Decomposition>,
    /// `true` when the job rode an already-built exchange plan (shared
    /// persistent-plan cache; it skips the per-tile setup overhead).
    pub plan_reused: bool,
}

impl JobRecord {
    /// FCT for completed jobs.
    pub fn fct(&self) -> Option<f64> {
        self.outcome.fct()
    }

    /// Slowdown vs the isolated run, for completed jobs.
    pub fn slowdown(&self) -> Option<f64> {
        let fct = self.outcome.fct()?;
        (self.isolated > 0.0).then(|| fct / self.isolated)
    }
}

/// Order statistics over a set of per-job values (FCTs or slowdowns).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FctStats {
    /// Values the statistics are over.
    pub count: usize,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl FctStats {
    fn from_values(mut values: Vec<f64>) -> Self {
        values.sort_by(f64::total_cmp);
        let count = values.len();
        if count == 0 {
            return FctStats::default();
        }
        let pick = |pct: f64| {
            let idx = ((pct / 100.0 * count as f64).ceil() as usize).max(1) - 1;
            values[idx.min(count - 1)]
        };
        FctStats {
            count,
            p50: pick(50.0),
            p99: pick(99.0),
            mean: values.iter().sum::<f64>() / count as f64,
            max: values[count - 1],
        }
    }
}

/// Per-tenant accounting.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant id.
    pub tenant: usize,
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs shed at admission.
    pub rejected: usize,
    /// Jobs cancelled after admission.
    pub cancelled: usize,
    /// Mean slowdown of this tenant's completed jobs (0 if none).
    pub mean_slowdown: f64,
    /// Wire bytes this tenant's completed jobs exchanged.
    pub bytes: u64,
}

/// Everything the service observed for one submitted batch.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-job records, in submission-batch order.
    pub jobs: Vec<JobRecord>,
    /// Per-tenant summaries, ascending by tenant id.
    pub tenants: Vec<TenantStats>,
    /// FCT statistics over completed jobs.
    pub fct: FctStats,
    /// Slowdown (FCT / isolated) statistics over completed jobs.
    pub slowdown: FctStats,
    /// Jain fairness index over per-tenant mean slowdowns (1.0 = perfectly
    /// fair; ≥ 0.9 is the acceptance bar).
    pub jain: f64,
    /// Virtual time the last job reached a terminal state.
    pub makespan: f64,
    /// Jobs that rode a shared exchange plan instead of building their own.
    pub plan_reuses: usize,
}

impl ServiceReport {
    /// Completed-job count.
    pub fn completed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|r| r.outcome.is_completed())
            .count()
    }

    /// Rejected-job count.
    pub fn rejected(&self) -> usize {
        self.jobs
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Rejected(_)))
            .count()
    }

    /// Cancelled-job count.
    pub fn cancelled(&self) -> usize {
        self.jobs
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Cancelled { .. }))
            .count()
    }
}

/// Real-data result of one completed job ([`Service::run_with_data`]).
#[derive(Debug, Clone)]
pub struct JobData {
    /// The spec the final attempt ran with (`p` shrinks after recovery).
    pub spec: ProblemSpec,
    /// Per-world-rank output blocks (`None` for ranks lost to a crash).
    pub slabs: Vec<Option<Vec<Complex64>>>,
    /// Worst per-rank error vs the serial reference.
    pub max_err: f64,
    /// World ranks lost to this job's own faults.
    pub lost: Vec<usize>,
    /// Transform attempts the data layer consumed (1 for a clean job).
    pub attempts: u32,
}

// ---------------------------------------------------------------------------
// Job profiles: the step/flow program a job runs on the engine
// ---------------------------------------------------------------------------

/// One scheduler-visible step of a job's pipeline program.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// CPU work in (already fault-scaled) seconds; arbitrated by DRR.
    Compute(f64),
    /// Activate flow `i` — the non-blocking post, free at this level.
    Post(usize),
    /// Block until flow `i` has fully drained; consuming it credits its
    /// logical bytes.
    Wait(usize),
}

/// One all-to-all exchange as the fluid network model sees it.
#[derive(Debug, Clone, Copy)]
struct FlowSpec {
    /// Remaining volume in bytes (schedule rounds × round bytes, inflated
    /// by any link degradation).
    fluid: f64,
    /// Fixed latency (α per round), drained after the bytes.
    latency: f64,
    /// Unscaled wire bytes credited when the flow is consumed.
    logical: u64,
    /// Communicator size of the exchange (sets its contention β_eff).
    group: usize,
    /// Seconds this flow needs alone on the link (for backlog prediction).
    serial: f64,
}

/// Where a job's injected crash bites: just before `step` (the post of
/// communication tile `tile`, the convention [`FaultKind::RankCrash`]
/// uses) on the first attempt.
#[derive(Debug, Clone, Copy)]
struct CrashMark {
    step: usize,
    tile: usize,
    rank: usize,
}

/// A job compiled to the engine's step/flow program, priced on the same
/// cost model the pipelines run on.
#[derive(Debug, Clone)]
struct JobProfile {
    steps: Vec<Step>,
    flows: Vec<FlowSpec>,
    /// Total CPU seconds (for the admission backlog estimate).
    compute_total: f64,
    /// Total serialized network seconds (ditto).
    net_total: f64,
    crash: Option<CrashMark>,
}

/// Exchange-geometry key for the shared persistent-plan cache:
/// `(grid rows or 0 for slab, nx, ny, nz, p, t)`.
type GeomKey = (usize, usize, usize, usize, usize, usize);

/// Emits the step/flow program of one pipeline, mirroring the constant
/// window logic of [`crate::pipeline`]'s driver: post until the window is
/// full, then wait-oldest / post-next / drain-oldest per tile.
struct Emitter<'a> {
    net: &'a NetModel,
    steps: Vec<Step>,
    flows: Vec<FlowSpec>,
    drains: Vec<f64>,
    inflight: Vec<usize>,
    w: usize,
    compute_scale: f64,
    link_scale: f64,
    /// Per-post exchange-setup cost (0 once the geometry's plan is shared).
    setup: f64,
    compute_total: f64,
    net_total: f64,
    crash_tile: Option<(usize, usize)>,
    tile_no: usize,
    crash: Option<CrashMark>,
}

impl<'a> Emitter<'a> {
    fn new(
        net: &'a NetModel,
        compute_scale: f64,
        link_scale: f64,
        setup: f64,
        crash_tile: Option<(usize, usize)>,
    ) -> Self {
        Emitter {
            net,
            steps: Vec::new(),
            flows: Vec::new(),
            drains: Vec::new(),
            inflight: Vec::new(),
            w: 1,
            compute_scale,
            link_scale,
            setup,
            compute_total: 0.0,
            net_total: 0.0,
            crash_tile,
            tile_no: 0,
            crash: None,
        }
    }

    fn compute(&mut self, secs: f64) {
        let s = secs * self.compute_scale;
        if s > 0.0 {
            self.steps.push(Step::Compute(s));
            self.compute_total += s;
        }
    }

    fn make_flow(&mut self, group: usize, bytes_per_peer: u64, drain: f64) -> usize {
        let wire = self.net.exchange_bytes(group, bytes_per_peer);
        let fluid = wire as f64 * self.link_scale;
        let latency = self.net.exchange_latency(group, bytes_per_peer) * self.link_scale;
        let serial = fluid / self.net.effective_bw(group, 1) + latency;
        self.flows.push(FlowSpec {
            fluid,
            latency,
            logical: wire,
            group,
            serial,
        });
        self.drains.push(drain);
        self.net_total += serial;
        self.flows.len() - 1
    }

    fn push_post(&mut self, f: usize) {
        self.compute(self.setup);
        if let Some((tile, rank)) = self.crash_tile {
            if self.tile_no == tile && self.crash.is_none() {
                self.crash = Some(CrashMark {
                    step: self.steps.len(),
                    tile,
                    rank,
                });
            }
        }
        self.steps.push(Step::Post(f));
        self.inflight.push(f);
    }

    fn wait_oldest(&mut self) -> usize {
        let oldest = self.inflight.remove(0);
        self.steps.push(Step::Wait(oldest));
        oldest
    }

    /// One communication tile: post its exchange under the window
    /// discipline, draining (unpack + FFTx compute) as tiles retire.
    fn exchange(&mut self, group: usize, bytes_per_peer: u64, drain: f64) {
        let f = self.make_flow(group, bytes_per_peer, drain);
        if self.w == 0 {
            self.push_post(f);
            let done = self.wait_oldest();
            self.compute(self.drains[done]);
        } else if self.inflight.len() >= self.w {
            let done = self.wait_oldest();
            self.push_post(f);
            self.compute(self.drains[done]);
        } else {
            self.push_post(f);
        }
        self.tile_no += 1;
    }

    /// Drain every exchange still in flight.
    fn finish(&mut self) {
        while !self.inflight.is_empty() {
            let done = self.wait_oldest();
            self.compute(self.drains[done]);
        }
    }

    fn into_profile(mut self) -> JobProfile {
        // A crash tile past the end of the job bites at the last post.
        if let (Some((tile, rank)), None) = (self.crash_tile, self.crash) {
            let last_post = self.steps.iter().rposition(|s| matches!(s, Step::Post(_)));
            if let Some(step) = last_post {
                self.crash = Some(CrashMark { step, tile, rank });
            }
        }
        JobProfile {
            steps: self.steps,
            flows: self.flows,
            compute_total: self.compute_total,
            net_total: self.net_total,
            crash: self.crash,
        }
    }
}

/// The slab pipeline program: per array, FFTz + transpose, then per tile
/// FFTy + pack, the windowed exchange, and unpack + FFTx on drain. Array
/// boundaries keep the window open — the fused job-train shape of
/// [`crate::multi`].
fn emit_slab(
    em: &mut Emitter<'_>,
    machine: &MachineModel,
    spec: ProblemSpec,
    params: TuningParams,
    arrays: usize,
) {
    let costs = SlabCosts::worst_rank(machine.clone(), spec, params);
    let k = costs.tiles();
    em.w = params.w.min(k.max(1));
    for _ in 0..arrays {
        em.compute(costs.fftz());
        em.compute(costs.transpose());
        for i in 0..k {
            let tz = costs.tile_len(i);
            em.compute(costs.ffty(tz));
            em.compute(costs.pack(tz));
            em.exchange(
                spec.p,
                costs.bytes_per_peer(tz),
                costs.unpack(tz) + costs.fftx(tz),
            );
        }
    }
    em.finish();
}

/// The pencil pipeline program: two exchange stages over the row/column
/// subgroups, mirroring the overlapped 2-D backend's cost structure.
fn emit_pencil(
    em: &mut Emitter<'_>,
    machine: &MachineModel,
    spec: ProblemSpec,
    pr: usize,
    pc: usize,
    params: TuningParams,
    arrays: usize,
) {
    let (pr, pc) = (pr.max(1), pc.max(1));
    let cache = machine.subtile_cache_bytes;
    let nxl = spec.nx.div_ceil(pr).max(1);
    let nyc = spec.ny.div_ceil(pc).max(1);
    let nzl = spec.nz.div_ceil(pc).max(1);
    let ny2l = spec.ny.div_ceil(pr).max(1);
    for _ in 0..arrays {
        // Stage 1: FFTz + pack per x-tile, exchange within the pc-column.
        let xt = params.t.clamp(1, nxl);
        let k1 = nxl.div_ceil(xt);
        em.w = params.w.min(k1.max(1));
        for _ in 0..k1 {
            let tile_bytes = (xt * nyc * spec.nz) as u64 * ELEM_BYTES;
            em.compute(machine.fft_batch(spec.nz, (xt * nyc) as u64));
            em.compute(machine.pack(tile_bytes, cache, nzl as u64 * ELEM_BYTES));
            let drain = machine.pack(tile_bytes, cache, (spec.ny / pc).max(1) as u64 * ELEM_BYTES)
                + machine.fft_batch(spec.ny, (xt * nzl) as u64);
            em.exchange(pc, tile_bytes / pc as u64, drain);
        }
        em.finish();
        // Stage 2: pack per z-tile, exchange within the pr-row.
        let zt = params.t.clamp(1, nzl);
        let k2 = nzl.div_ceil(zt);
        em.w = params.w.min(k2.max(1));
        for _ in 0..k2 {
            let tile_bytes = (nxl * spec.ny * zt) as u64 * ELEM_BYTES;
            em.compute(machine.pack(tile_bytes, cache, (spec.ny / pr).max(1) as u64 * ELEM_BYTES));
            let drain = machine.pack(tile_bytes, cache, (spec.nx / pr).max(1) as u64 * ELEM_BYTES)
                + machine.fft_batch(spec.nx, (ny2l * zt) as u64);
            em.exchange(pr, tile_bytes / pr as u64, drain);
        }
        em.finish();
    }
}

/// Compiles one job to its engine program. `reused` marks that the
/// geometry's exchange plan already lives in the shared cache, waiving the
/// per-post setup overhead.
fn build_profile(
    cfg: &ServiceConfig,
    job: &JobSpec,
    reused: bool,
) -> Result<(JobProfile, GeomKey, Decomposition), Error> {
    let spec = ProblemSpec {
        p: cfg.ranks,
        ..job.spec
    };
    let decomp = auto_select(cfg.platform.clone(), &spec, cfg.ranks)?;
    let machine = &cfg.platform.machine;
    let net = &cfg.platform.net;
    let compute_scale = (0..cfg.ranks)
        .map(|r| cfg.platform.faults.compute_factor(r) * job.faults.compute_factor(r))
        .fold(1.0, f64::max);
    let link_scale = cfg.platform.faults.link_factor() * job.faults.link_factor();
    let crash_tile = job
        .faults
        .crash
        .as_ref()
        .map(|FaultKind::RankCrash { rank, at_tile }| (*at_tile, *rank));
    let setup = if reused {
        0.0
    } else {
        net.post_overhead(cfg.ranks).as_secs_f64()
    };
    let arrays = job.arrays.max(1);
    let mut em = Emitter::new(net, compute_scale, link_scale, setup, crash_tile);
    let key = match decomp {
        Decomposition::Slab => {
            let params = TuningParams::seed(&spec);
            emit_slab(&mut em, machine, spec, params, arrays);
            (0, spec.nx, spec.ny, spec.nz, cfg.ranks, params.t)
        }
        Decomposition::Pencil(grid) => {
            let params = pencil_seed(&spec, grid);
            emit_pencil(&mut em, machine, spec, grid.pr, grid.pc, params, arrays);
            (grid.pr, spec.nx, spec.ny, spec.nz, cfg.ranks, params.t)
        }
    };
    Ok((em.into_profile(), key, decomp))
}

// ---------------------------------------------------------------------------
// The discrete-event engine
// ---------------------------------------------------------------------------

/// One admitted job's live state.
struct Slot {
    job: usize,
    tenant: usize,
    priority: u8,
    submitted: f64,
    deadline_at: Option<f64>,
    profile: JobProfile,
    plan_reused: bool,
    next_step: usize,
    attempt: u32,
    retry_at: Option<f64>,
    blocked_on: Option<usize>,
    flow_done: Vec<bool>,
    compute_done: f64,
    net_done: f64,
    bytes: u64,
    finished: Option<(f64, JobOutcome)>,
}

impl Slot {
    fn alive(&self) -> bool {
        self.finished.is_none()
    }
}

/// One in-flight exchange sharing the cluster's links.
struct ActiveFlow {
    slot: usize,
    flow: usize,
    fluid: f64,
    latency: f64,
    group: usize,
}

impl ActiveFlow {
    fn eta(&self, rate: f64) -> f64 {
        self.fluid / rate + self.latency
    }

    fn drain(&mut self, dt: f64, rate: f64) {
        let bytes_time = self.fluid / rate;
        if dt >= bytes_time {
            self.fluid = 0.0;
            self.latency = (self.latency - (dt - bytes_time)).max(0.0);
        } else {
            self.fluid -= dt * rate;
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Cpu {
    slot: usize,
    secs: f64,
    finish: f64,
}

struct Arrival {
    at: f64,
    job: usize,
}

struct Engine<'a> {
    cfg: &'a ServiceConfig,
    jobs: &'a [JobSpec],
    prepared: &'a [Result<(IsolatedRun, GeomKey, Decomposition), Error>],
    now: f64,
    slots: Vec<Slot>,
    active: Vec<ActiveFlow>,
    cpu: Option<Cpu>,
    tenants: Vec<usize>,
    deficit: Vec<f64>,
    cursor: usize,
    geoms: Vec<GeomKey>,
    rejections: Vec<(usize, f64, RejectReason)>,
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a ServiceConfig,
        jobs: &'a [JobSpec],
        prepared: &'a [Result<(IsolatedRun, GeomKey, Decomposition), Error>],
        tenants: Vec<usize>,
    ) -> Self {
        let deficit = vec![0.0; tenants.len()];
        Engine {
            cfg,
            jobs,
            prepared,
            now: 0.0,
            slots: Vec::new(),
            active: Vec::new(),
            cpu: None,
            tenants,
            deficit,
            cursor: 0,
            geoms: Vec::new(),
            rejections: Vec::new(),
        }
    }

    fn bw(&self, group: usize, n_active: u32) -> f64 {
        self.cfg.platform.net.effective_bw(group, n_active)
    }

    /// Cluster-wide count of in-flight exchanges, saturating at the model's
    /// window-count width.
    fn active_windows(&self) -> u32 {
        u32::try_from(self.active.len()).unwrap_or(u32::MAX)
    }

    /// Predicted completion (relative seconds) for a job of `prio` with an
    /// isolated span of `iso`: the backlog of unfinished work at its
    /// priority or above on the binding resource (CPU or network — they
    /// overlap, so the max binds), plus its own span, padded by the
    /// headroom factor.
    fn predict(&self, prio: u8, iso: f64) -> f64 {
        let mut cpu_backlog = 0.0;
        let mut net_backlog = 0.0;
        for s in self
            .slots
            .iter()
            .filter(|s| s.alive() && s.priority >= prio)
        {
            cpu_backlog += (s.profile.compute_total - s.compute_done).max(0.0);
            net_backlog += (s.profile.net_total - s.net_done).max(0.0);
        }
        (cpu_backlog.max(net_backlog) + iso) * self.cfg.headroom
    }

    fn admission(&self, j: usize) -> Admission {
        let job = &self.jobs[j];
        let (iso, _, _) = match &self.prepared[j] {
            Ok(v) => v,
            Err(e) => {
                return Admission::Rejected {
                    reason: RejectReason::Infeasible(*e),
                }
            }
        };
        let live = self
            .slots
            .iter()
            .filter(|s| s.tenant == job.tenant && s.alive())
            .count();
        if live >= self.cfg.queue_limit {
            return Admission::Rejected {
                reason: RejectReason::QueueFull {
                    limit: self.cfg.queue_limit,
                },
            };
        }
        let predicted = self.predict(job.priority, iso.time);
        if let Some(deadline) = job.deadline {
            if predicted > deadline {
                return Admission::Rejected {
                    reason: RejectReason::DeadlineUnmeetable {
                        predicted,
                        deadline,
                    },
                };
            }
        }
        Admission::Accepted { predicted }
    }

    fn admit(&mut self, j: usize) {
        match self.admission(j) {
            Admission::Rejected { reason } => {
                self.rejections.push((j, self.now, reason));
            }
            Admission::Accepted { .. } => {
                let job = &self.jobs[j];
                let key = match &self.prepared[j] {
                    Ok((_, key, _)) => *key,
                    Err(e) => {
                        self.rejections
                            .push((j, self.now, RejectReason::Infeasible(*e)));
                        return;
                    }
                };
                let reused = self.geoms.contains(&key);
                if !reused {
                    self.geoms.push(key);
                }
                let profile = match build_profile(self.cfg, job, reused) {
                    Ok((p, _, _)) => p,
                    Err(e) => {
                        self.rejections
                            .push((j, self.now, RejectReason::Infeasible(e)));
                        return;
                    }
                };
                let nflows = profile.flows.len();
                let i = self.slots.len();
                self.slots.push(Slot {
                    job: j,
                    tenant: job.tenant,
                    priority: job.priority,
                    submitted: self.now,
                    deadline_at: job.deadline.map(|d| self.now + d),
                    profile,
                    plan_reused: reused,
                    next_step: 0,
                    attempt: 1,
                    retry_at: None,
                    blocked_on: None,
                    flow_done: vec![false; nflows],
                    compute_done: 0.0,
                    net_done: 0.0,
                    bytes: 0,
                    finished: None,
                });
                self.progress(i);
            }
        }
    }

    /// Pushes this slot's program forward through every step that costs
    /// nothing at the engine level, stopping at a CPU step (DRR's job), a
    /// wait on an undrained flow, or the end of the program.
    fn progress(&mut self, i: usize) {
        loop {
            if self.slots[i].finished.is_some() {
                return;
            }
            let next = self.slots[i].next_step;
            if next >= self.slots[i].profile.steps.len() {
                let fct = self.now - self.slots[i].submitted;
                self.slots[i].finished = Some((self.now, JobOutcome::Completed { fct }));
                return;
            }
            if self.slots[i].attempt == 1 {
                if let Some(c) = self.slots[i].profile.crash {
                    if c.step == next {
                        self.fail_attempt(i, c);
                        return;
                    }
                }
            }
            match self.slots[i].profile.steps[next] {
                Step::Compute(_) => return,
                Step::Post(f) => {
                    self.activate(i, f);
                    self.slots[i].next_step += 1;
                }
                Step::Wait(f) => {
                    if self.slots[i].flow_done[f] {
                        let fs = self.slots[i].profile.flows[f];
                        self.slots[i].bytes += fs.logical;
                        self.slots[i].net_done += fs.serial;
                        self.slots[i].next_step += 1;
                    } else {
                        self.slots[i].blocked_on = Some(f);
                        return;
                    }
                }
            }
        }
    }

    fn activate(&mut self, slot: usize, flow: usize) {
        let fs = self.slots[slot].profile.flows[flow];
        if fs.fluid <= BYTE_EPS && fs.latency <= EPS {
            // Degenerate exchange (single-rank group): completes at post.
            self.slots[slot].flow_done[flow] = true;
            return;
        }
        self.active.push(ActiveFlow {
            slot,
            flow,
            fluid: fs.fluid,
            latency: fs.latency,
            group: fs.group,
        });
    }

    /// The job's first attempt dies at its crash mark: tear down its
    /// flows (reclaiming their bandwidth share), then either schedule a
    /// backoff-paced retry or cancel with a typed reason.
    fn fail_attempt(&mut self, i: usize, c: CrashMark) {
        self.active.retain(|f| f.slot != i);
        if let Some(cpu) = &self.cpu {
            if cpu.slot == i {
                self.cpu = None;
            }
        }
        let salt = ((self.slots[i].job as u64) << 8) | self.slots[i].attempt as u64;
        let s = &mut self.slots[i];
        s.blocked_on = None;
        for d in s.flow_done.iter_mut() {
            *d = false;
        }
        s.next_step = 0;
        s.compute_done = 0.0;
        s.net_done = 0.0;
        s.attempt += 1;
        if s.attempt > self.cfg.max_attempts {
            let err = Error::RankFailed {
                tile: c.tile,
                rank: c.rank,
            };
            s.finished = Some((
                self.now,
                JobOutcome::Cancelled {
                    at: self.now,
                    reason: CancelReason::RetriesExhausted(err),
                },
            ));
            return;
        }
        let mut pause = self.cfg.backoff.first();
        for _ in 2..s.attempt {
            pause = self.cfg.backoff.next(pause);
        }
        let jittered = self.cfg.backoff.park(pause, salt).as_secs_f64();
        s.retry_at = Some(self.now + jittered);
    }

    /// Deadline watchdog (or operator) cancellation: terminal state plus
    /// immediate teardown of in-flight exchanges and any running compute.
    fn cancel(&mut self, i: usize, reason: CancelReason) {
        self.active.retain(|f| f.slot != i);
        if let Some(cpu) = &self.cpu {
            if cpu.slot == i {
                self.cpu = None;
            }
        }
        let s = &mut self.slots[i];
        s.blocked_on = None;
        s.retry_at = None;
        s.finished = Some((
            self.now,
            JobOutcome::Cancelled {
                at: self.now,
                reason,
            },
        ));
    }

    /// Highest-priority runnable job of `tenant` (lowest slot id breaks
    /// ties — FIFO within a priority).
    fn runnable(&self, tenant: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, s) in self.slots.iter().enumerate() {
            if s.tenant != tenant
                || !s.alive()
                || s.retry_at.is_some()
                || s.blocked_on.is_some()
                || s.next_step >= s.profile.steps.len()
                || !matches!(s.profile.steps[s.next_step], Step::Compute(_))
            {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    if s.priority > self.slots[b].priority {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Deficit-round-robin arbitration of the shared compute: each tenant
    /// turn tops up its deficit by one quantum and runs compute steps until
    /// the deficit is spent; empty tenants forfeit their carry.
    fn dispatch_cpu(&mut self) {
        if self.cpu.is_some() {
            return;
        }
        let nt = self.tenants.len();
        for k in 0..nt {
            let ti = (self.cursor + k) % nt;
            let tenant = self.tenants[ti];
            let Some(i) = self.runnable(tenant) else {
                self.deficit[ti] = 0.0;
                continue;
            };
            if self.deficit[ti] <= 0.0 {
                self.deficit[ti] += self.cfg.quantum;
            }
            let Step::Compute(c) = self.slots[i].profile.steps[self.slots[i].next_step] else {
                continue;
            };
            self.deficit[ti] -= c;
            self.cursor = if self.deficit[ti] <= 0.0 {
                (ti + 1) % nt
            } else {
                ti
            };
            self.cpu = Some(Cpu {
                slot: i,
                secs: c,
                finish: self.now + c,
            });
            return;
        }
    }

    /// Advances the fluid network to `to`, completing every flow that
    /// drains on the way. Rates are constant between completions (each
    /// flow gets `effective_bw(group, n_active)` with the cluster-wide
    /// active count), so the walk visits each completion instant exactly.
    fn advance_flows(&mut self, to: f64) {
        loop {
            if self.active.is_empty() {
                break;
            }
            let n = self.active_windows();
            let mut first = f64::INFINITY;
            let mut argmin = 0;
            for (idx, f) in self.active.iter().enumerate() {
                let eta = f.eta(self.bw(f.group, n));
                if eta < first {
                    first = eta;
                    argmin = idx;
                }
            }
            if self.now + first > to + EPS {
                let dt = to - self.now;
                if dt > EPS {
                    for idx in 0..self.active.len() {
                        let rate = self.bw(self.active[idx].group, n);
                        self.active[idx].drain(dt, rate);
                    }
                }
                break;
            }
            let dt = first.max(0.0);
            for idx in 0..self.active.len() {
                let rate = self.bw(self.active[idx].group, n);
                self.active[idx].drain(dt, rate);
            }
            self.now += dt;
            // Float residue must not stall the walk: the argmin flow is
            // done by construction.
            self.active[argmin].fluid = 0.0;
            self.active[argmin].latency = 0.0;
            let mut done: Vec<(usize, usize)> = Vec::new();
            self.active.retain(|f| {
                if f.fluid <= BYTE_EPS && f.latency <= EPS {
                    done.push((f.slot, f.flow));
                    false
                } else {
                    true
                }
            });
            for (slot, flow) in done {
                self.slots[slot].flow_done[flow] = true;
                if self.slots[slot].blocked_on == Some(flow) {
                    self.slots[slot].blocked_on = None;
                    self.progress(slot);
                }
            }
        }
        self.now = to;
    }

    /// The event loop: repeatedly find the earliest of CPU completion,
    /// flow completion, retry release, arrival, and deadline; advance the
    /// fluid network there; fire everything due. Flow completions fire
    /// before deadlines at the same instant, so a job finishing exactly at
    /// its deadline counts as completed.
    fn drive(&mut self, arrivals: &[Arrival]) {
        let mut ai = 0;
        loop {
            self.dispatch_cpu();
            let mut t = f64::INFINITY;
            if let Some(c) = &self.cpu {
                t = t.min(c.finish);
            }
            if ai < arrivals.len() {
                t = t.min(arrivals[ai].at);
            }
            for s in &self.slots {
                if !s.alive() {
                    continue;
                }
                if let Some(r) = s.retry_at {
                    t = t.min(r);
                }
                if let Some(d) = s.deadline_at {
                    t = t.min(d);
                }
            }
            if !self.active.is_empty() {
                let n = self.active_windows();
                for f in &self.active {
                    t = t.min(self.now + f.eta(self.bw(f.group, n)));
                }
            }
            if !t.is_finite() {
                break;
            }
            let t = t.max(self.now);
            self.advance_flows(t);
            if let Some(c) = self.cpu {
                if c.finish <= self.now + EPS {
                    self.cpu = None;
                    self.slots[c.slot].compute_done += c.secs;
                    self.slots[c.slot].next_step += 1;
                    self.progress(c.slot);
                }
            }
            for i in 0..self.slots.len() {
                if self.slots[i].alive() {
                    if let Some(r) = self.slots[i].retry_at {
                        if r <= self.now + EPS {
                            self.slots[i].retry_at = None;
                        }
                    }
                }
            }
            while ai < arrivals.len() && arrivals[ai].at <= self.now + EPS {
                let j = arrivals[ai].job;
                ai += 1;
                self.admit(j);
            }
            for i in 0..self.slots.len() {
                if !self.slots[i].alive() {
                    continue;
                }
                if let Some(d) = self.slots[i].deadline_at {
                    if d <= self.now + EPS {
                        let deadline = d - self.slots[i].submitted;
                        self.cancel(i, CancelReason::DeadlineExceeded { deadline });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The service front end
// ---------------------------------------------------------------------------

/// The multi-tenant service: owns the policy, prices jobs, schedules
/// batches.
#[derive(Debug, Clone)]
pub struct Service {
    cfg: ServiceConfig,
}

impl Service {
    /// Builds a service over the given cluster policy.
    pub fn new(cfg: ServiceConfig) -> Self {
        Service { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Prices one job running alone on the cluster with cold plan caches:
    /// the slowdown baseline and the conservation reference.
    pub fn isolated_run(&self, job: &JobSpec) -> Result<IsolatedRun, Error> {
        let (profile, _, _) = build_profile(&self.cfg, job, false)?;
        Ok(run_isolated(&self.cfg, profile))
    }

    /// Runs a batch of submissions on the timing layer: admission,
    /// scheduling, contention, deadlines, retries — returning the full
    /// per-job / per-tenant accounting. Deterministic: a pure function of
    /// `(jobs, config)`.
    pub fn run(&self, jobs: &[JobSpec]) -> ServiceReport {
        let prepared: Vec<Result<(IsolatedRun, GeomKey, Decomposition), Error>> = jobs
            .iter()
            .map(|job| {
                let (profile, key, decomp) = build_profile(&self.cfg, job, false)?;
                Ok((run_isolated(&self.cfg, profile), key, decomp))
            })
            .collect();
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| jobs[a].arrival.total_cmp(&jobs[b].arrival).then(a.cmp(&b)));
        let arrivals: Vec<Arrival> = order
            .iter()
            .map(|&j| Arrival {
                at: jobs[j].arrival.max(0.0),
                job: j,
            })
            .collect();
        let mut tenants: Vec<usize> = jobs.iter().map(|j| j.tenant).collect();
        tenants.sort_unstable();
        tenants.dedup();
        let mut eng = Engine::new(&self.cfg, jobs, &prepared, tenants.clone());
        eng.drive(&arrivals);
        assemble_report(jobs, &prepared, &tenants, eng)
    }

    /// Runs the batch on the timing layer, then executes every *completed*
    /// job on the real-data `mpisim` backend, in completion order, with
    /// each job's faults scoped to itself. Clean jobs run `try_fft3_dist`
    /// (or the pencil path); crashed jobs recover through
    /// [`run_recoverable`]. Returns the per-job data (indexed like the
    /// submission batch; `None` for jobs that did not complete) so tests
    /// can pin tenant isolation bit-for-bit.
    pub fn run_with_data(
        &self,
        jobs: &[JobSpec],
    ) -> Result<(ServiceReport, Vec<Option<JobData>>), Error> {
        let report = self.run(jobs);
        let mut data: Vec<Option<JobData>> = vec![None; jobs.len()];
        let mut done: Vec<(f64, usize)> = report
            .jobs
            .iter()
            .filter(|r| r.outcome.is_completed())
            .map(|r| (r.finished_at.unwrap_or(0.0), r.job))
            .collect();
        done.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (_, j) in done {
            data[j] = Some(execute_job(&self.cfg, &jobs[j], j as u64)?);
        }
        Ok((report, data))
    }
}

/// Runs one compiled profile alone on a fresh engine.
fn run_isolated(cfg: &ServiceConfig, profile: JobProfile) -> IsolatedRun {
    let nflows = profile.flows.len();
    let mut eng = Engine::new(cfg, &[], &[], vec![0]);
    eng.slots.push(Slot {
        job: 0,
        tenant: 0,
        priority: 0,
        submitted: 0.0,
        deadline_at: None,
        profile,
        plan_reused: false,
        next_step: 0,
        attempt: 1,
        retry_at: None,
        blocked_on: None,
        flow_done: vec![false; nflows],
        compute_done: 0.0,
        net_done: 0.0,
        bytes: 0,
        finished: None,
    });
    eng.progress(0);
    eng.drive(&[]);
    let s = &eng.slots[0];
    IsolatedRun {
        time: s.finished.map(|(at, _)| at).unwrap_or(eng.now),
        bytes: s.bytes,
        attempts: s.attempt,
    }
}

fn assemble_report(
    jobs: &[JobSpec],
    prepared: &[Result<(IsolatedRun, GeomKey, Decomposition), Error>],
    tenants: &[usize],
    eng: Engine<'_>,
) -> ServiceReport {
    let mut records: Vec<JobRecord> = Vec::with_capacity(jobs.len());
    for (j, job) in jobs.iter().enumerate() {
        let (iso, decomp) = match &prepared[j] {
            Ok((iso, _, d)) => (*iso, Some(*d)),
            Err(_) => (
                IsolatedRun {
                    time: 0.0,
                    bytes: 0,
                    attempts: 0,
                },
                None,
            ),
        };
        let record = if let Some(slot) = eng.slots.iter().find(|s| s.job == j) {
            let (finished_at, outcome) = slot.finished.unwrap_or((
                eng.now,
                JobOutcome::Cancelled {
                    at: eng.now,
                    reason: CancelReason::RetriesExhausted(Error::Internal(
                        "job stranded at end of run",
                    )),
                },
            ));
            JobRecord {
                job: j,
                tenant: job.tenant,
                priority: job.priority,
                submitted: slot.submitted,
                outcome,
                finished_at: Some(finished_at),
                isolated: iso.time,
                isolated_bytes: iso.bytes,
                bytes: slot.bytes,
                attempts: slot.attempt,
                decomp,
                plan_reused: slot.plan_reused,
            }
        } else if let Some((_, at, reason)) = eng.rejections.iter().find(|(rj, _, _)| *rj == j) {
            JobRecord {
                job: j,
                tenant: job.tenant,
                priority: job.priority,
                submitted: *at,
                outcome: JobOutcome::Rejected(*reason),
                finished_at: None,
                isolated: iso.time,
                isolated_bytes: iso.bytes,
                bytes: 0,
                attempts: 0,
                decomp,
                plan_reused: false,
            }
        } else {
            // Unreachable: every submission either gets a slot or a
            // rejection. Keep the record total anyway.
            JobRecord {
                job: j,
                tenant: job.tenant,
                priority: job.priority,
                submitted: job.arrival,
                outcome: JobOutcome::Rejected(RejectReason::Infeasible(Error::Internal(
                    "submission was never processed",
                ))),
                finished_at: None,
                isolated: iso.time,
                isolated_bytes: iso.bytes,
                bytes: 0,
                attempts: 0,
                decomp,
                plan_reused: false,
            }
        };
        records.push(record);
    }

    let fcts: Vec<f64> = records.iter().filter_map(JobRecord::fct).collect();
    let slowdowns: Vec<f64> = records.iter().filter_map(JobRecord::slowdown).collect();
    let mut tenant_stats = Vec::with_capacity(tenants.len());
    for &t in tenants {
        let mine: Vec<&JobRecord> = records.iter().filter(|r| r.tenant == t).collect();
        let completed: Vec<&&JobRecord> =
            mine.iter().filter(|r| r.outcome.is_completed()).collect();
        let slows: Vec<f64> = completed.iter().filter_map(|r| r.slowdown()).collect();
        tenant_stats.push(TenantStats {
            tenant: t,
            submitted: mine.len(),
            completed: completed.len(),
            rejected: mine
                .iter()
                .filter(|r| matches!(r.outcome, JobOutcome::Rejected(_)))
                .count(),
            cancelled: mine
                .iter()
                .filter(|r| matches!(r.outcome, JobOutcome::Cancelled { .. }))
                .count(),
            mean_slowdown: if slows.is_empty() {
                0.0
            } else {
                slows.iter().sum::<f64>() / slows.len() as f64
            },
            bytes: completed.iter().map(|r| r.bytes).sum(),
        });
    }
    let per_tenant_slow: Vec<f64> = tenant_stats
        .iter()
        .filter(|t| t.completed > 0)
        .map(|t| t.mean_slowdown)
        .collect();
    let jain = jain_index(&per_tenant_slow);
    let makespan = records
        .iter()
        .filter_map(|r| r.finished_at)
        .fold(0.0, f64::max);
    let plan_reuses = records.iter().filter(|r| r.plan_reused).count();
    ServiceReport {
        jobs: records,
        tenants: tenant_stats,
        fct: FctStats::from_values(fcts),
        slowdown: FctStats::from_values(slowdowns),
        jain,
        makespan,
        plan_reuses,
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`; 1.0 for an empty or uniform
/// set.
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sq)
}

// ---------------------------------------------------------------------------
// Real-data execution (tenant-isolation layer)
// ---------------------------------------------------------------------------

fn serial_reference(spec: &ProblemSpec, dir: Direction) -> Arc<Vec<Complex64>> {
    let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
    fft3_serial(&mut reference, spec.nx, spec.ny, spec.nz, dir);
    Arc::new(reference)
}

/// Executes one completed job on the real-data backend with its faults
/// scoped to itself (`salt` = the job's batch index), sharing the
/// process-global plan caches with every job executed before it.
fn execute_job(cfg: &ServiceConfig, job: &JobSpec, salt: u64) -> Result<JobData, Error> {
    let spec = ProblemSpec {
        p: cfg.ranks,
        ..job.spec
    };
    let decomp = auto_select(cfg.platform.clone(), &spec, cfg.ranks)?;
    let dir = job.dir;
    let faults = job.faults.clone().scoped(salt);
    let reference = serial_reference(&spec, dir);
    match decomp {
        Decomposition::Slab => {
            let params = TuningParams::seed(&spec);
            if faults.has_crash() {
                let full = Arc::new(full_test_array(spec.nx, spec.ny, spec.nz));
                let outs = mpisim::run_crashable(spec.p, faults, move |comm| {
                    run_recoverable(
                        &comm,
                        spec,
                        Variant::New,
                        params,
                        dir,
                        Rigor::Estimate,
                        &ReplicaSource::new(Arc::clone(&full)),
                        &RecoverConfig::default(),
                        &mut NoopRecorder,
                    )
                });
                let mut slabs: Vec<Option<Vec<Complex64>>> = vec![None; spec.p];
                let mut max_err = 0.0f64;
                let mut lost: Vec<usize> = Vec::new();
                let mut final_spec = spec;
                let mut attempts = 1;
                for (rank, out) in outs.into_iter().enumerate() {
                    match out {
                        None => {
                            if !lost.contains(&rank) {
                                lost.push(rank);
                            }
                        }
                        Some(Ok(oc)) => {
                            max_err = max_err.max(compare_with_serial(
                                &oc.spec, oc.rank, &oc.output, &reference,
                            ));
                            final_spec = oc.spec;
                            attempts = attempts.max(oc.attempts);
                            for l in &oc.lost {
                                if !lost.contains(l) {
                                    lost.push(*l);
                                }
                            }
                            slabs[rank] = Some(oc.output.data);
                        }
                        Some(Err(e)) => return Err(e),
                    }
                }
                lost.sort_unstable();
                Ok(JobData {
                    spec: final_spec,
                    slabs,
                    max_err,
                    lost,
                    attempts,
                })
            } else {
                let outs = mpisim::run_with_faults(spec.p, faults, move |comm| {
                    let input = local_test_slab(&spec, comm.rank());
                    try_fft3_dist(
                        &comm,
                        spec,
                        Variant::New,
                        params,
                        dir,
                        Rigor::Estimate,
                        &input,
                    )
                });
                let mut slabs: Vec<Option<Vec<Complex64>>> = vec![None; spec.p];
                let mut max_err = 0.0f64;
                for (rank, out) in outs.into_iter().enumerate() {
                    let out = out?;
                    max_err = max_err.max(compare_with_serial(&spec, rank, &out, &reference));
                    slabs[rank] = Some(out.data);
                }
                Ok(JobData {
                    spec,
                    slabs,
                    max_err,
                    lost: Vec::new(),
                    attempts: 1,
                })
            }
        }
        Decomposition::Pencil(grid) => {
            // The pencil path has no ULFM recovery story yet: a crash there
            // cannot be healed into full data, so surface it as a typed
            // error instead of letting `run_with_faults` panic.
            if faults.has_crash() {
                return Err(Error::Unrecoverable(
                    "pencil decomposition has no crash-recovery path",
                ));
            }
            let outs = mpisim::run_with_faults(spec.p, faults, move |comm| {
                let input = pencil_test_input(&spec, grid, comm.rank());
                try_fft3_pencil(&comm, spec, grid, dir, &input)
            });
            let mut slabs: Vec<Option<Vec<Complex64>>> = vec![None; spec.p];
            let mut max_err = 0.0f64;
            for (rank, out) in outs.into_iter().enumerate() {
                let out = out?;
                max_err = max_err.max(compare_pencil_with_serial(
                    &spec, grid, rank, &out, &reference,
                ));
                slabs[rank] = Some(out.data);
            }
            Ok(JobData {
                spec,
                slabs,
                max_err,
                lost: Vec::new(),
                attempts: 1,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::model::umd_cluster;

    fn cfg16() -> ServiceConfig {
        ServiceConfig::new(umd_cluster(), 16)
    }

    fn job(tenant: usize) -> JobSpec {
        JobSpec::new(tenant, ProblemSpec::cube(256, 1), Direction::Forward)
    }

    /// Digest of a report for determinism comparisons: every per-job field
    /// that could diverge, bit-exact.
    fn digest(r: &ServiceReport) -> Vec<(usize, u64, u64, u32, String)> {
        r.jobs
            .iter()
            .map(|j| {
                (
                    j.job,
                    j.fct().unwrap_or(-1.0).to_bits(),
                    j.bytes,
                    j.attempts,
                    format!("{:?}", j.outcome),
                )
            })
            .collect()
    }

    #[test]
    fn single_job_matches_its_isolated_run_exactly() {
        let svc = Service::new(cfg16());
        let j = job(0);
        let iso = svc.isolated_run(&j).expect("isolated run");
        let rep = svc.run(&[j]);
        let rec = &rep.jobs[0];
        let fct = rec.fct().expect("job must complete");
        assert!(
            (fct - iso.time).abs() < 1e-9,
            "alone on the cluster, fct {fct} must equal isolated {}",
            iso.time
        );
        assert_eq!(rec.bytes, iso.bytes, "conservation on the trivial case");
        assert!(rec.bytes > 0, "a 16-rank exchange moves bytes");
        assert!(!rec.plan_reused, "first geometry is a cold plan");
        assert_eq!(rep.jain, 1.0);
    }

    #[test]
    fn same_seed_same_report() {
        let svc = Service::new(cfg16());
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| {
                job(i % 3)
                    .at(i as f64 * 0.05)
                    .with_priority((i % 2) as u8)
                    .with_faults(FaultPlan::seeded(9).with_rank_crash(1, i))
            })
            .collect();
        let a = svc.run(&jobs);
        let b = svc.run(&jobs);
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn concurrent_jobs_degrade_each_other() {
        let svc = Service::new(cfg16());
        let jobs = [job(0), job(1)];
        let rep = svc.run(&jobs);
        for rec in &rep.jobs {
            let slow = rec.slowdown().expect("both jobs complete");
            assert!(
                slow > 1.05,
                "two jobs sharing the links must each slow down, got {slow}"
            );
            assert!(slow < 2.5, "sharing cannot cost more than serialisation");
        }
        // Symmetric tenants → near-perfect fairness.
        assert!(rep.jain > 0.99, "jain {}", rep.jain);
    }

    #[test]
    fn tenant_queue_bound_backpressures() {
        let mut cfg = cfg16();
        cfg.queue_limit = 1;
        let svc = Service::new(cfg);
        let rep = svc.run(&[job(0), job(0)]);
        assert!(rep.jobs[0].outcome.is_completed());
        match rep.jobs[1].outcome {
            JobOutcome::Rejected(RejectReason::QueueFull { limit: 1 }) => {}
            ref o => panic!("expected QueueFull rejection, got {o:?}"),
        }
    }

    #[test]
    fn unmeetable_deadline_is_shed_at_admission() {
        let svc = Service::new(cfg16());
        let j = job(0);
        let iso = svc.isolated_run(&j).expect("isolated run");
        let rep = svc.run(&[j.with_deadline(iso.time * 0.5)]);
        match rep.jobs[0].outcome {
            JobOutcome::Rejected(RejectReason::DeadlineUnmeetable {
                predicted,
                deadline,
            }) => {
                assert!(predicted > deadline);
            }
            ref o => panic!("expected DeadlineUnmeetable, got {o:?}"),
        }
    }

    #[test]
    fn overrunning_job_is_cancelled_and_bandwidth_reclaimed() {
        let svc = Service::new(cfg16());
        let iso = svc.isolated_run(&job(0)).expect("isolated run").time;
        // Three concurrent tenants; measure what contention does to the
        // first job, then give it a deadline past the admission bound
        // (headroom × iso — it arrives alone, so it is admitted) but short
        // of its contended completion, so the watchdog must fire.
        let mix = |deadline: Option<f64>| {
            let mut first = job(0);
            first.deadline = deadline;
            [first, job(1).at(iso * 0.01), job(2).at(iso * 0.01)]
        };
        let free = svc.run(&mix(None));
        let contended = free.jobs[0].fct().expect("contended run completes");
        let admit_bound = iso * svc.config().headroom;
        assert!(
            contended > admit_bound,
            "scenario needs contention past the admission bound: {contended} vs {admit_bound}"
        );
        let deadline = (admit_bound + contended) / 2.0;
        let rep = svc.run(&mix(Some(deadline)));
        match rep.jobs[0].outcome {
            JobOutcome::Cancelled {
                at,
                reason: CancelReason::DeadlineExceeded { .. },
            } => {
                assert!((at - deadline).abs() < 1e-6, "cancel at the deadline");
            }
            ref o => panic!("expected DeadlineExceeded, got {o:?}"),
        }
        // The survivors complete, faster than three-way sharing would
        // allow for their whole span (the cancel returned bandwidth).
        for rec in &rep.jobs[1..] {
            let slow = rec.slowdown().expect("survivors complete");
            assert!(slow < 3.0, "slowdown {slow}");
        }
    }

    #[test]
    fn crashed_job_retries_with_backoff_and_completes() {
        let svc = Service::new(cfg16());
        let iso_clean = svc.isolated_run(&job(0)).expect("isolated").time;
        let crashy = job(0).with_faults(FaultPlan::seeded(3).with_rank_crash(2, 4));
        let rep = svc.run(std::slice::from_ref(&crashy));
        let rec = &rep.jobs[0];
        assert!(rec.outcome.is_completed(), "{:?}", rec.outcome);
        assert_eq!(rec.attempts, 2, "one crash, one successful retry");
        let fct = rec.fct().expect("completed");
        assert!(
            fct > iso_clean,
            "the lost attempt and backoff must cost time: {fct} vs {iso_clean}"
        );
        // Conservation: the isolated baseline crashes identically, so the
        // byte totals still match.
        assert_eq!(rec.bytes, rec.isolated_bytes);
    }

    #[test]
    fn retries_exhausted_is_a_typed_cancellation() {
        let mut cfg = cfg16();
        cfg.max_attempts = 1;
        let svc = Service::new(cfg);
        let rep = svc.run(&[job(0).with_faults(FaultPlan::seeded(3).with_rank_crash(2, 4))]);
        match rep.jobs[0].outcome {
            JobOutcome::Cancelled {
                reason: CancelReason::RetriesExhausted(Error::RankFailed { rank: 2, .. }),
                ..
            } => {}
            ref o => panic!("expected RetriesExhausted(RankFailed), got {o:?}"),
        }
    }

    #[test]
    fn second_job_of_a_geometry_rides_the_shared_plan() {
        let svc = Service::new(cfg16());
        let iso = svc.isolated_run(&job(0)).expect("isolated").time;
        let jobs = [job(0), job(1).at(iso * 2.0)];
        let rep = svc.run(&jobs);
        assert!(!rep.jobs[0].plan_reused);
        assert!(rep.jobs[1].plan_reused, "same geometry must share the plan");
        assert_eq!(rep.plan_reuses, 1);
        let (a, b) = (
            rep.jobs[0].fct().expect("a completes"),
            rep.jobs[1].fct().expect("b completes"),
        );
        assert!(
            b <= a + 1e-12,
            "a warm plan cannot be slower than the cold one: {b} vs {a}"
        );
    }

    #[test]
    fn pencil_geometry_past_the_slab_wall_completes() {
        let svc = Service::new(ServiceConfig::new(umd_cluster(), 128));
        let j = JobSpec::new(0, ProblemSpec::cube(64, 1), Direction::Forward);
        let rep = svc.run(&[j]);
        let rec = &rep.jobs[0];
        assert!(rec.outcome.is_completed(), "{:?}", rec.outcome);
        assert!(matches!(rec.decomp, Some(Decomposition::Pencil(_))));
        assert!(rec.bytes > 0);
        assert_eq!(rec.bytes, rec.isolated_bytes);
    }

    #[test]
    fn infeasible_geometry_is_a_typed_rejection() {
        let svc = Service::new(cfg16());
        let j = JobSpec::new(
            0,
            ProblemSpec {
                nx: 0,
                ny: 8,
                nz: 8,
                p: 1,
            },
            Direction::Forward,
        );
        let rep = svc.run(&[j]);
        match rep.jobs[0].outcome {
            JobOutcome::Rejected(RejectReason::Infeasible(Error::InfeasibleParams(_))) => {}
            ref o => panic!("expected Infeasible rejection, got {o:?}"),
        }
    }

    #[test]
    fn empty_batch_is_an_empty_report() {
        let svc = Service::new(cfg16());
        let rep = svc.run(&[]);
        assert!(rep.jobs.is_empty());
        assert_eq!(rep.jain, 1.0);
        assert_eq!(rep.makespan, 0.0);
    }

    #[test]
    fn fct_stats_are_nearest_rank() {
        let s = FctStats::from_values(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p99, 4.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[2.0, 2.0, 2.0]), 1.0);
        let skewed = jain_index(&[1.0, 1.0, 10.0]);
        assert!(skewed < 0.6, "{skewed}");
    }
}
