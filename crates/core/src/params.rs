//! The tunable parameters (Table 1 of the paper, plus an intra-rank thread
//! count `Th`) and their feasibility rules.

/// Size and process count of one distributed 3-D FFT problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemSpec {
    /// Elements along x.
    pub nx: usize,
    /// Elements along y.
    pub ny: usize,
    /// Elements along z.
    pub nz: usize,
    /// Number of parallel processes.
    pub p: usize,
}

impl ProblemSpec {
    /// A cubic problem (`N³` elements), the shape every experiment in the
    /// paper uses.
    pub fn cube(n: usize, p: usize) -> Self {
        ProblemSpec {
            nx: n,
            ny: n,
            nz: n,
            p,
        }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `true` for degenerate zero-size problems.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the §3.5 fast-transpose path applies.
    pub fn square_xy(&self) -> bool {
        self.nx == self.ny
    }
}

/// The tunable parameters of the overlapped 3-D FFT: the paper's ten
/// (Table 1) plus `Th`, the intra-rank worker-thread count for the batched
/// kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuningParams {
    /// `T` — elements on z per communication tile.
    pub t: usize,
    /// `W` — max tiles in concurrent all-to-all flight.
    pub w: usize,
    /// `Px` — sub-tile width on x during Pack.
    pub px: usize,
    /// `Pz` — sub-tile depth on z during Pack.
    pub pz: usize,
    /// `Uy` — sub-tile height on y during Unpack.
    pub uy: usize,
    /// `Uz` — sub-tile depth on z during Unpack.
    pub uz: usize,
    /// `Fy` — `MPI_Test` calls during FFTy per tile.
    pub fy: u32,
    /// `Fp` — `MPI_Test` calls during Pack per tile.
    pub fp: u32,
    /// `Fu` — `MPI_Test` calls during Unpack per tile.
    pub fu: u32,
    /// `Fx` — `MPI_Test` calls during FFTx per tile.
    pub fx: u32,
    /// `Th` — worker threads for the intra-rank batched kernels (FFT
    /// batches, transposes, Pack/Unpack sub-tiles). `1` keeps every kernel
    /// on the rank's own thread.
    pub threads: usize,
}

/// Why a parameter configuration is infeasible for a given problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// `T` outside `1..=Nz`.
    TileSize(usize),
    /// `W` outside `1..=⌈Nz/T⌉` (a window wider than the tile count is
    /// wasted but harmless; wider than Nz tiles is rejected as nonsense).
    Window(usize),
    /// `Px` outside `1..=⌈Nx/p⌉` (the local slab width).
    PackX(usize),
    /// `Pz` outside `1..=T`.
    PackZ(usize),
    /// `Uy` outside `1..=⌈Ny/p⌉` (the local output slab height).
    UnpackY(usize),
    /// `Uz` outside `1..=T`.
    UnpackZ(usize),
    /// `Th` below 1 (a pipeline with no compute threads cannot progress).
    Threads(usize),
    /// A problem axis has zero extent; planning a transform for it is
    /// meaningless. Carries the axis name.
    ZeroExtent(&'static str),
    /// A process grid was requested over zero ranks (`p = 0`); there is no
    /// valid decomposition of anything over an empty communicator.
    ZeroRanks,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::TileSize(v) => write!(f, "T = {v} out of range"),
            ParamError::Window(v) => write!(f, "W = {v} out of range"),
            ParamError::PackX(v) => write!(f, "Px = {v} out of range"),
            ParamError::PackZ(v) => write!(f, "Pz = {v} exceeds T"),
            ParamError::UnpackY(v) => write!(f, "Uy = {v} out of range"),
            ParamError::UnpackZ(v) => write!(f, "Uz = {v} exceeds T"),
            ParamError::Threads(v) => write!(f, "Th = {v} out of range"),
            ParamError::ZeroExtent(axis) => write!(f, "axis {axis} has zero extent"),
            ParamError::ZeroRanks => write!(f, "cannot build a process grid over zero ranks"),
        }
    }
}

impl std::error::Error for ParamError {}

impl TuningParams {
    /// Validates the cross-parameter constraints of §4.4 ("the tile size T
    /// must be ≥ 1 and ≤ Nz, and the sub-tile size Pz must be ≥ 1 and
    /// ≤ T", etc.) against `spec`.
    pub fn validate(&self, spec: &ProblemSpec) -> Result<(), ParamError> {
        self.validate_without_window(spec)?;
        let tiles = spec.nz.div_ceil(self.t);
        if self.w < 1 || self.w > tiles {
            return Err(ParamError::Window(self.w));
        }
        Ok(())
    }

    /// [`Self::validate`] minus the window-range rule: the checks that must
    /// hold even for the non-overlapped NEW-0 encoding (`w = 0`), where a
    /// window constraint is meaningless but a zero `Px`/`Uy`/`T` would still
    /// divide by zero deeper in the pipeline.
    pub fn validate_without_window(&self, spec: &ProblemSpec) -> Result<(), ParamError> {
        let nxl = spec.nx.div_ceil(spec.p);
        let nyl = spec.ny.div_ceil(spec.p);
        if self.t < 1 || self.t > spec.nz {
            return Err(ParamError::TileSize(self.t));
        }
        if self.px < 1 || self.px > nxl {
            return Err(ParamError::PackX(self.px));
        }
        if self.pz < 1 || self.pz > self.t {
            return Err(ParamError::PackZ(self.pz));
        }
        if self.uy < 1 || self.uy > nyl {
            return Err(ParamError::UnpackY(self.uy));
        }
        if self.uz < 1 || self.uz > self.t {
            return Err(ParamError::UnpackZ(self.uz));
        }
        if self.threads < 1 {
            return Err(ParamError::Threads(self.threads));
        }
        Ok(())
    }

    /// `true` when [`Self::validate`] passes.
    pub fn is_feasible(&self, spec: &ProblemSpec) -> bool {
        self.validate(spec).is_ok()
    }

    /// Number of communication tiles `k = ⌈Nz / T⌉` (Algorithm 1 line 3).
    pub fn tiles(&self, spec: &ProblemSpec) -> usize {
        spec.nz.div_ceil(self.t)
    }

    /// The §4.4 default point the initial simplex is built around:
    /// `T = Nz/16`, `W = 2`, sub-tiles sized to fit 8 Ki elements in a
    /// 256 KiB cache, `F* = p/2`.
    pub fn seed(spec: &ProblemSpec) -> TuningParams {
        let nxl = spec.nx.div_ceil(spec.p);
        let nyl = spec.ny.div_ceil(spec.p);
        let t = (spec.nz / 16).max(1);
        let px = (8192 / spec.ny.max(1)).clamp(1, nxl);
        let pz = (8192 / spec.ny.max(1) / px.max(1)).clamp(1, t);
        let uy = (8192 / spec.nx.max(1)).clamp(1, nyl);
        let uz = (8192 / spec.nx.max(1) / uy.max(1)).clamp(1, t);
        let f = (spec.p / 2).max(1) as u32;
        let tiles = spec.nz.div_ceil(t);
        TuningParams {
            t,
            w: 2.min(tiles),
            px,
            pz,
            uy,
            uz,
            fy: f,
            fp: f,
            fu: f,
            fx: f,
            threads: 1,
        }
    }

    /// The non-overlapped variant of a configuration: the paper's NEW-0
    /// ("`W` and all the frequency parameters are set to be zero with all
    /// the other parameters equal"). Encoded here as `w = 0` plus zero poll
    /// counts; the pipeline driver then posts and waits per tile.
    pub fn without_overlap(mut self) -> TuningParams {
        self.w = 0;
        self.fy = 0;
        self.fp = 0;
        self.fu = 0;
        self.fx = 0;
        self
    }

    /// Total `MPI_Test` budget per tile across all four phases.
    pub fn polls_per_tile(&self) -> u32 {
        self.fy + self.fp + self.fu + self.fx
    }
}

/// The three parameters of the TH comparator (Hoefler et al.'s kernel,
/// auto-tuned the same way for fairness — §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThParams {
    /// Communication tile size.
    pub t: usize,
    /// Window size.
    pub w: usize,
    /// `MPI_Test` calls per tile (all during FFTy+Pack; TH does not overlap
    /// Unpack/FFTx).
    pub f: u32,
}

impl ThParams {
    /// Feasibility for `spec` (same T/W rules as NEW).
    pub fn is_feasible(&self, spec: &ProblemSpec) -> bool {
        self.t >= 1 && self.t <= spec.nz && self.w >= 1 && self.w <= spec.nz.div_ceil(self.t)
    }

    /// Number of communication tiles.
    pub fn tiles(&self, spec: &ProblemSpec) -> usize {
        spec.nz.div_ceil(self.t)
    }

    /// Default starting point for tuning.
    pub fn seed(spec: &ProblemSpec) -> ThParams {
        let t = (spec.nz / 16).max(1);
        ThParams {
            t,
            w: 2.min(spec.nz.div_ceil(t)),
            f: (spec.p as u32 / 2).max(1),
        }
    }

    /// Non-overlapped TH-0 variant.
    pub fn without_overlap(mut self) -> ThParams {
        self.w = 0;
        self.f = 0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ProblemSpec {
        ProblemSpec::cube(256, 16)
    }

    #[test]
    fn seed_is_feasible_for_paper_settings() {
        for n in [256usize, 384, 512, 640, 1280, 1536, 1792, 2048] {
            for p in [16usize, 32, 128, 256] {
                let s = ProblemSpec::cube(n, p);
                let seed = TuningParams::seed(&s);
                assert!(
                    seed.is_feasible(&s),
                    "seed infeasible for N={n} p={p}: {seed:?}"
                );
            }
        }
    }

    #[test]
    fn seed_matches_section_4_4_formulas() {
        let s = spec();
        let seed = TuningParams::seed(&s);
        assert_eq!(seed.t, 16); // Nz/16
        assert_eq!(seed.w, 2);
        // Px = 8192/Ny = 32 clamps to the local slab width Nx/p = 16.
        assert_eq!(seed.px, 16);
        assert_eq!(seed.fy, 8); // p/2
    }

    #[test]
    fn constraint_violations_are_reported() {
        let s = spec();
        let mut p = TuningParams::seed(&s);
        p.pz = p.t + 1;
        assert_eq!(p.validate(&s), Err(ParamError::PackZ(p.pz)));
        let mut q = TuningParams::seed(&s);
        q.t = s.nz + 1;
        assert!(matches!(q.validate(&s), Err(ParamError::TileSize(_))));
        let mut r = TuningParams::seed(&s);
        r.px = 1000;
        assert!(matches!(r.validate(&s), Err(ParamError::PackX(_))));
    }

    #[test]
    fn without_window_still_rejects_degenerate_subtiles() {
        let s = spec();
        let mut p = TuningParams::seed(&s).without_overlap();
        assert_eq!(p.validate_without_window(&s), Ok(()));
        assert!(matches!(p.validate(&s), Err(ParamError::Window(0))));
        p.px = 0;
        assert_eq!(p.validate_without_window(&s), Err(ParamError::PackX(0)));
        p.px = 16;
        p.uy = 0;
        assert_eq!(p.validate_without_window(&s), Err(ParamError::UnpackY(0)));
        p.uy = 16;
        p.t = 0;
        assert!(matches!(
            p.validate_without_window(&s),
            Err(ParamError::TileSize(0))
        ));
    }

    #[test]
    fn zero_threads_is_rejected() {
        let s = spec();
        let mut p = TuningParams::seed(&s);
        assert_eq!(p.threads, 1);
        p.threads = 0;
        assert_eq!(p.validate(&s), Err(ParamError::Threads(0)));
        p.threads = 4;
        assert_eq!(p.validate(&s), Ok(()));
    }

    #[test]
    fn tile_count_rounds_up() {
        let s = ProblemSpec::cube(24, 4);
        let p = TuningParams {
            t: 7,
            ..TuningParams::seed(&s)
        };
        assert_eq!(p.tiles(&s), 4); // 24/7 → 4 tiles (7,7,7,3)
    }

    #[test]
    fn without_overlap_zeroes_the_right_fields() {
        let s = spec();
        let p = TuningParams::seed(&s).without_overlap();
        assert_eq!(p.w, 0);
        assert_eq!(p.polls_per_tile(), 0);
        assert_eq!(p.t, TuningParams::seed(&s).t);
    }

    #[test]
    fn th_params_feasibility() {
        let s = spec();
        let th = ThParams::seed(&s);
        assert!(th.is_feasible(&s));
        assert!(!ThParams { t: 0, w: 1, f: 1 }.is_feasible(&s));
        assert!(!ThParams { t: 256, w: 2, f: 1 }.is_feasible(&s)); // only 1 tile
    }

    #[test]
    fn square_xy_detection() {
        assert!(ProblemSpec::cube(64, 4).square_xy());
        assert!(!ProblemSpec {
            nx: 64,
            ny: 32,
            nz: 64,
            p: 4
        }
        .square_xy());
    }
}
