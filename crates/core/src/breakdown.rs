//! Per-step time accounting — the categories of Figure 8.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Time spent in each step of the pipeline, in seconds. The categories are
/// exactly those of the paper's Figure 8 breakdown: FFTz, Transpose, FFTy,
/// Pack, Unpack, FFTx, Ialltoall (post overhead), Wait, and Test.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepTimes {
    /// 1-D FFTs along z.
    pub fftz: f64,
    /// Memory-layout rearrangement after FFTz.
    pub transpose: f64,
    /// 1-D FFTs along y (per tile).
    pub ffty: f64,
    /// Packing tiles into send buffers.
    pub pack: f64,
    /// Unpacking receive buffers into the output layout.
    pub unpack: f64,
    /// 1-D FFTs along x (per tile).
    pub fftx: f64,
    /// Posting non-blocking (or executing the transfer phase of blocking)
    /// all-to-alls.
    pub ialltoall: f64,
    /// Blocking in `MPI_Wait`.
    pub wait: f64,
    /// `MPI_Test` call overhead.
    pub test: f64,
}

impl StepTimes {
    /// Sum of every category: the rank's total busy time.
    pub fn total(&self) -> f64 {
        self.fftz
            + self.transpose
            + self.ffty
            + self.pack
            + self.unpack
            + self.fftx
            + self.ialltoall
            + self.wait
            + self.test
    }

    /// The "overlappable computation" of §5.2.1: FFTy + Pack + Unpack +
    /// FFTx.
    pub fn overlappable(&self) -> f64 {
        self.ffty + self.pack + self.unpack + self.fftx
    }

    /// Element-wise maximum (used to report the slowest rank per category).
    pub fn max(&self, o: &StepTimes) -> StepTimes {
        StepTimes {
            fftz: self.fftz.max(o.fftz),
            transpose: self.transpose.max(o.transpose),
            ffty: self.ffty.max(o.ffty),
            pack: self.pack.max(o.pack),
            unpack: self.unpack.max(o.unpack),
            fftx: self.fftx.max(o.fftx),
            ialltoall: self.ialltoall.max(o.ialltoall),
            wait: self.wait.max(o.wait),
            test: self.test.max(o.test),
        }
    }

    /// Scales every category (e.g. for averaging across ranks).
    pub fn scale(&self, s: f64) -> StepTimes {
        StepTimes {
            fftz: self.fftz * s,
            transpose: self.transpose * s,
            ffty: self.ffty * s,
            pack: self.pack * s,
            unpack: self.unpack * s,
            fftx: self.fftx * s,
            ialltoall: self.ialltoall * s,
            wait: self.wait * s,
            test: self.test * s,
        }
    }

    /// `(label, seconds)` pairs in Figure 8's legend order.
    pub fn entries(&self) -> [(&'static str, f64); 9] {
        [
            ("FFTz", self.fftz),
            ("Transpose", self.transpose),
            ("FFTy", self.ffty),
            ("Pack", self.pack),
            ("Unpack", self.unpack),
            ("FFTx", self.fftx),
            ("Ialltoall", self.ialltoall),
            ("Wait", self.wait),
            ("Test", self.test),
        ]
    }
}

impl Add for StepTimes {
    type Output = StepTimes;
    fn add(self, o: StepTimes) -> StepTimes {
        StepTimes {
            fftz: self.fftz + o.fftz,
            transpose: self.transpose + o.transpose,
            ffty: self.ffty + o.ffty,
            pack: self.pack + o.pack,
            unpack: self.unpack + o.unpack,
            fftx: self.fftx + o.fftx,
            ialltoall: self.ialltoall + o.ialltoall,
            wait: self.wait + o.wait,
            test: self.test + o.test,
        }
    }
}

impl AddAssign for StepTimes {
    fn add_assign(&mut self, o: StepTimes) {
        *self = *self + o;
    }
}

impl fmt::Display for StepTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in self.entries() {
            writeln!(f, "{name:>10}: {v:>9.4}s")?;
        }
        write!(f, "{:>10}: {:>9.4}s", "total", self.total())
    }
}

/// Result of one distributed 3-D FFT execution on one rank.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-step breakdown.
    pub steps: StepTimes,
    /// Wall (or virtual) time from entry to completion, seconds. May be
    /// less than `steps.total()` only through rounding; overlap shows up as
    /// a *small `wait`*, not as elapsed < busy.
    pub elapsed: f64,
    /// Total `MPI_Test` calls made.
    pub tests: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_categories() {
        let t = StepTimes {
            fftz: 1.0,
            transpose: 2.0,
            ffty: 3.0,
            pack: 4.0,
            unpack: 5.0,
            fftx: 6.0,
            ialltoall: 7.0,
            wait: 8.0,
            test: 9.0,
        };
        assert_eq!(t.total(), 45.0);
        assert_eq!(t.overlappable(), 3.0 + 4.0 + 5.0 + 6.0);
    }

    #[test]
    fn add_and_scale() {
        let a = StepTimes {
            fftz: 1.0,
            wait: 2.0,
            ..Default::default()
        };
        let b = StepTimes {
            fftz: 0.5,
            test: 1.0,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.fftz, 1.5);
        assert_eq!(c.wait, 2.0);
        assert_eq!(c.test, 1.0);
        let half = c.scale(0.5);
        assert_eq!(half.fftz, 0.75);
    }

    #[test]
    fn max_is_elementwise() {
        let a = StepTimes {
            fftz: 1.0,
            wait: 5.0,
            ..Default::default()
        };
        let b = StepTimes {
            fftz: 2.0,
            wait: 1.0,
            ..Default::default()
        };
        let m = a.max(&b);
        assert_eq!(m.fftz, 2.0);
        assert_eq!(m.wait, 5.0);
    }

    #[test]
    fn entries_are_in_figure8_order() {
        let names: Vec<&str> = StepTimes::default().entries().iter().map(|e| e.0).collect();
        assert_eq!(
            names,
            vec![
                "FFTz",
                "Transpose",
                "FFTy",
                "Pack",
                "Unpack",
                "FFTx",
                "Ialltoall",
                "Wait",
                "Test"
            ]
        );
    }
}
