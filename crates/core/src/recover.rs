//! Elastic rank-failure recovery for the distributed transform (ULFM
//! style; DESIGN.md §14).
//!
//! The fallible entry points ([`crate::try_fft3_dist_traced`]) turn a peer
//! death into a typed [`Error::RankFailed`] — but a single rank returning
//! an error does not make a *recovery*: the survivors must learn about the
//! failure together, rebuild a smaller world, and recompute. That protocol
//! lives here, layered strictly on top of the pipeline:
//!
//! 1. **Attempt** the transform on the current communicator.
//! 2. **Agree** (fault-aware consensus, [`mpisim::Comm::agree`]) on whether
//!    *any* rank erred — ranks that finished cleanly still participate, so
//!    an asymmetric outcome (one rank stuck on the dead peer, the rest
//!    done) converges on one decision.
//! 3. On failure: **revoke** the communicator (poisoning stragglers'
//!    in-flight operations), **shrink** to the dense survivor
//!    communicator, re-run the slab decomposition over the surviving `p′`
//!    ranks, re-fetch input from the caller's [`SlabSource`], and retry.
//! 4. A survivor whose input slab cannot be produced is agreed on the same
//!    way, and *every* survivor returns [`Error::Unrecoverable`] — a
//!    missing source is a symmetric, typed outcome, never a hang.
//!
//! An optional Parseval self-check ([`RecoverConfig::verify_energy`])
//! guards against silently accepting a wrong recomputation: for the
//! unnormalised kernels, `Σ|X|² = N·Σ|x|²` must hold across the surviving
//! world, or everyone returns [`Error::VerificationFailed`].

use crate::decomp::Decomp;
use crate::error::Error;
use crate::params::{ProblemSpec, TuningParams};
use crate::pipeline::Resilience;
use crate::real_env::{try_fft3_dist_traced, RunOutput, Variant};
use crate::trace::{EventKind, Recorder, TraceEvent};
use cfft::planner::Rigor;
use cfft::{Complex64, Direction};
use mpisim::Comm;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a rank's input slab comes from when the decomposition changes.
///
/// After a shrink the surviving ranks own *different* x-slabs than before
/// (the slab decomposition is re-run over `p′` ranks), so recovery cannot
/// proceed from the slabs already in memory — the caller must be able to
/// (re)produce the input for an arbitrary `(spec, rank)`. Returning `None`
/// marks the slab unrecoverable; the driver agrees on that across the
/// survivors and everyone gets [`Error::Unrecoverable`].
pub trait SlabSource: Sync {
    /// This rank's x-slab for `spec` (whose `p` is the *current* world
    /// size), in x-y-z layout: `count_x(rank)·ny·nz` elements.
    fn slab(&self, spec: &ProblemSpec, rank: usize) -> Option<Vec<Complex64>>;
}

/// A full in-memory replica of the global input array (x-y-z layout,
/// `nx·ny·nz` elements): any slab of any decomposition can be cut from it.
/// The cheap-but-memory-hungry end of the source spectrum.
pub struct ReplicaSource {
    full: Arc<Vec<Complex64>>,
}

impl ReplicaSource {
    /// Wraps a shared replica; `full.len()` must be `nx·ny·nz` for every
    /// spec this source is asked about (checked at slab time).
    pub fn new(full: Arc<Vec<Complex64>>) -> Self {
        ReplicaSource { full }
    }
}

impl SlabSource for ReplicaSource {
    fn slab(&self, spec: &ProblemSpec, rank: usize) -> Option<Vec<Complex64>> {
        if self.full.len() != spec.nx * spec.ny * spec.nz {
            return None;
        }
        let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
        let (nxl, xoff) = (decomp.x.count(rank), decomp.x.offset(rank));
        let mut v = Vec::with_capacity(nxl * spec.ny * spec.nz);
        for xl in 0..nxl {
            let x = xoff + xl;
            for y in 0..spec.ny {
                let row = (x * spec.ny + y) * spec.nz;
                v.extend_from_slice(&self.full[row..row + spec.nz]);
            }
        }
        Some(v)
    }
}

/// Recomputes input elements from a caller-supplied generator
/// `f(x, y, z)` — the zero-replication end of the source spectrum, for
/// inputs that are (re)derivable (test fields, analytic initial
/// conditions, checkpointed closures).
pub struct ComputeSource<F: Fn(usize, usize, usize) -> Complex64 + Sync> {
    f: F,
}

impl<F: Fn(usize, usize, usize) -> Complex64 + Sync> ComputeSource<F> {
    /// Wraps the element generator.
    pub fn new(f: F) -> Self {
        ComputeSource { f }
    }
}

impl<F: Fn(usize, usize, usize) -> Complex64 + Sync> SlabSource for ComputeSource<F> {
    fn slab(&self, spec: &ProblemSpec, rank: usize) -> Option<Vec<Complex64>> {
        let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
        let (nxl, xoff) = (decomp.x.count(rank), decomp.x.offset(rank));
        let mut v = Vec::with_capacity(nxl * spec.ny * spec.nz);
        for xl in 0..nxl {
            for y in 0..spec.ny {
                for z in 0..spec.nz {
                    v.push((self.f)(xoff + xl, y, z));
                }
            }
        }
        Some(v)
    }
}

/// A source that can never produce a slab — models lost, unreplicated
/// input. Recovery over this source deterministically returns
/// [`Error::Unrecoverable`] on every survivor.
pub struct NoSource;

impl SlabSource for NoSource {
    fn slab(&self, _spec: &ProblemSpec, _rank: usize) -> Option<Vec<Complex64>> {
        None
    }
}

/// Policy knobs of the recovery driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoverConfig {
    /// Resilience policy for each attempt. The driver *forces* a stall
    /// watchdog (default 200 ms) when none is set: without one, a wait on
    /// a dead peer blocks forever and the failure is never typed.
    pub resilience: Resilience,
    /// Upper bound on transform attempts (first try + retries).
    pub max_attempts: u32,
    /// Relative tolerance for the post-recovery Parseval energy check;
    /// `None` skips verification. The check is collective over the
    /// surviving communicator and fails everyone together.
    pub verify_energy: Option<f64>,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig {
            resilience: Resilience::default(),
            max_attempts: 3,
            verify_energy: Some(1e-6),
        }
    }
}

/// What a successful (possibly recovered) run produced.
pub struct RecoverOutcome {
    /// This rank's output slab under the *final* decomposition.
    pub output: RunOutput,
    /// The spec the final attempt ran with (`spec.p` = surviving ranks).
    pub spec: ProblemSpec,
    /// This rank's dense rank in the final communicator.
    pub rank: usize,
    /// The shrunk communicator, when recovery re-built one (`None` means
    /// the original communicator completed the run and remains valid).
    pub comm: Option<Comm>,
    /// Transform attempts consumed (1 for a clean run).
    pub attempts: u32,
    /// World ranks lost across all recoveries, ascending.
    pub lost: Vec<usize>,
}

/// Flag bits the per-attempt consensus agrees on.
const FLAG_FAILURE: u64 = 1; // a failure-class error: recoverable by shrink
const FLAG_FATAL: u64 = 2; // a non-failure error: retrying cannot help
const FLAG_NO_SOURCE: u64 = 4; // a survivor's input slab has no source

fn classify(e: &Error) -> u64 {
    match e {
        Error::RankFailed { .. }
        | Error::Revoked { .. }
        | Error::Stalled { .. }
        | Error::Dropped { .. } => FLAG_FAILURE,
        _ => FLAG_FATAL,
    }
}

/// Runs the distributed transform with elastic rank-failure recovery.
///
/// Collective over `comm`: every member must call it with consistent
/// arguments and an equivalent `source`. On a peer death mid-transform the
/// survivors converge (agree → revoke → shrink → re-decompose → re-fetch →
/// retry) and each returns its slab of the recomputed result under the
/// shrunk world; the caller learns the new geometry from the outcome. All
/// error returns are symmetric across survivors except the per-rank typed
/// error of a fatal (non-failure) attempt.
#[allow(clippy::too_many_arguments)]
pub fn run_recoverable(
    comm: &Comm,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    dir: Direction,
    rigor: Rigor,
    source: &dyn SlabSource,
    cfg: &RecoverConfig,
    recorder: &mut dyn Recorder,
) -> Result<RecoverOutcome, Error> {
    let mut resilience = cfg.resilience;
    if resilience.stall_timeout.is_none() {
        resilience.stall_timeout = Some(Duration::from_millis(200));
    }
    let started = Instant::now();
    let mut owned: Option<Comm> = None;
    let mut spec_cur = spec;
    let mut params_cur = params;
    let mut lost: Vec<usize> = Vec::new();
    let mut last_err: Option<Error> = None;

    for attempt in 1..=cfg.max_attempts.max(1) {
        let cur = owned.as_ref().unwrap_or(comm);
        spec_cur.p = cur.size();

        // Fetch this attempt's input and agree on availability before
        // spending any compute: one unrecoverable slab fails everyone with
        // the same typed error.
        let slab = source.slab(&spec_cur, cur.rank());
        let miss_flag = if slab.is_some() { 0 } else { FLAG_NO_SOURCE };
        let (flags, _) = cur.agree(miss_flag);
        if flags & FLAG_NO_SOURCE != 0 {
            return Err(Error::Unrecoverable(
                "a survivor's input slab has no surviving source",
            ));
        }
        let slab = slab.ok_or(Error::Internal("agreed-present slab missing"))?;

        let result = try_fft3_dist_traced(
            cur,
            spec_cur,
            variant,
            params_cur,
            dir,
            rigor,
            &slab,
            &resilience,
            recorder,
        );

        // Per-attempt consensus: ranks that finished cleanly must still
        // join recovery when any peer erred (the dead rank's neighbours
        // can be stuck while distant ranks completed every tile).
        let my_flag = result.as_ref().err().map_or(0, classify);
        let (flags, agreed_failed) = cur.agree(my_flag);

        if flags == 0 {
            let output = result?;
            if let Some(tol) = cfg.verify_energy {
                verify_parseval(cur, &spec_cur, &slab, &output, tol)?;
            }
            return Ok(RecoverOutcome {
                output,
                spec: spec_cur,
                rank: cur.rank(),
                comm: owned,
                attempts: attempt,
                lost,
            });
        }
        if flags & FLAG_FATAL != 0 {
            // Retrying cannot fix a parameter or invariant error. Each rank
            // reports its own typed error; clean ranks learn a peer's.
            return Err(result.err().unwrap_or(Error::Unrecoverable(
                "a peer hit a non-recoverable error during the transform",
            )));
        }
        last_err = result.err();

        // Failure-class error somewhere: rebuild the world. Revoke first so
        // any straggler still progressing an old exchange is poisoned out
        // of it instead of waiting on a peer that has moved on.
        cur.revoke();
        if recorder.enabled() {
            let t = started.elapsed().as_secs_f64();
            for &r in &agreed_failed {
                recorder.record(TraceEvent {
                    start: t,
                    end: t,
                    kind: EventKind::RankLost { rank: r },
                });
            }
        }
        let from = cur.size();
        let shrunk = cur.shrink();
        let to = shrunk.size();
        if recorder.enabled() {
            let t = started.elapsed().as_secs_f64();
            recorder.record(TraceEvent {
                start: t,
                end: t,
                kind: EventKind::Shrink { from, to },
            });
        }
        for r in agreed_failed {
            if !lost.contains(&r) {
                lost.push(r);
            }
        }
        lost.sort_unstable();
        if to != from {
            // The decomposition changes: re-seed the schedule parameters
            // for the surviving world (thread budget is preserved). The
            // caller's hand-tuned schedule was tuned for the old `p`.
            let mut p2 = spec_cur;
            p2.p = to;
            let threads = params_cur.threads;
            params_cur = TuningParams::seed(&p2);
            params_cur.threads = threads;
        }
        owned = Some(shrunk);
    }
    Err(last_err.unwrap_or(Error::Unrecoverable("recovery attempts exhausted")))
}

/// Parseval self-check over the surviving world: for the unnormalised
/// kernels `Σ|X|² = N·Σ|x|²` (both directions), within `tol` relative.
fn verify_parseval(
    comm: &Comm,
    spec: &ProblemSpec,
    input: &[Complex64],
    output: &RunOutput,
    tol: f64,
) -> Result<(), Error> {
    let e_in: f64 = input.iter().map(|c| c.norm_sqr()).sum();
    let e_out: f64 = output.data.iter().map(|c| c.norm_sqr()).sum();
    let sums = comm.allreduce_sum(&[e_in, e_out]);
    let n = (spec.nx * spec.ny * spec.nz) as f64;
    let expect = n * sums[0];
    if (sums[1] - expect).abs() > tol * expect.max(f64::MIN_POSITIVE) {
        return Err(Error::VerificationFailed);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::test_field;

    #[test]
    fn replica_source_cuts_the_same_slab_as_the_direct_builder() {
        let spec = ProblemSpec {
            nx: 6,
            ny: 5,
            nz: 4,
            p: 3,
        };
        let full = Arc::new(crate::serial::full_test_array(spec.nx, spec.ny, spec.nz));
        let src = ReplicaSource::new(full);
        for rank in 0..spec.p {
            let direct = crate::real_env::local_test_slab(&spec, rank);
            assert_eq!(src.slab(&spec, rank).as_deref(), Some(&direct[..]));
        }
        // Wrong-size replica refuses rather than mis-slicing.
        let short = ReplicaSource::new(Arc::new(vec![Complex64::ZERO; 7]));
        assert!(short.slab(&spec, 0).is_none());
    }

    #[test]
    fn compute_source_matches_replica_source_on_every_decomposition() {
        let base = ProblemSpec {
            nx: 8,
            ny: 6,
            nz: 3,
            p: 4,
        };
        let full = Arc::new(crate::serial::full_test_array(base.nx, base.ny, base.nz));
        let replica = ReplicaSource::new(full);
        let compute = ComputeSource::new(test_field);
        for p in 1..=4 {
            let spec = ProblemSpec { p, ..base };
            for rank in 0..p {
                assert_eq!(
                    compute.slab(&spec, rank),
                    replica.slab(&spec, rank),
                    "p={p} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn no_source_never_produces() {
        let spec = ProblemSpec::cube(4, 2);
        assert!(NoSource.slab(&spec, 0).is_none());
    }

    #[test]
    fn error_classification_separates_failure_from_fatal() {
        assert_eq!(
            classify(&Error::RankFailed { tile: 0, rank: 1 }),
            FLAG_FAILURE
        );
        assert_eq!(classify(&Error::Revoked { tile: 0 }), FLAG_FAILURE);
        assert_eq!(
            classify(&Error::Stalled {
                tile: 0,
                round: 0,
                peer: 0
            }),
            FLAG_FAILURE
        );
        assert_eq!(classify(&Error::Internal("bug")), FLAG_FATAL);
        assert_eq!(classify(&Error::VerificationFailed), FLAG_FATAL);
    }
}
