//! Elastic rank-failure recovery for the distributed transform (ULFM
//! style; DESIGN.md §14).
//!
//! The fallible entry points ([`crate::try_fft3_dist_traced`]) turn a peer
//! death into a typed [`Error::RankFailed`] — but a single rank returning
//! an error does not make a *recovery*: the survivors must learn about the
//! failure together, rebuild a smaller world, and recompute. That protocol
//! lives here, layered strictly on top of the pipeline:
//!
//! 1. **Attempt** the transform on the current communicator.
//! 2. **Agree** (fault-aware consensus, [`mpisim::Comm::agree`]) on whether
//!    *any* rank erred — ranks that finished cleanly still participate, so
//!    an asymmetric outcome (one rank stuck on the dead peer, the rest
//!    done) converges on one decision.
//! 3. On failure: **revoke** the communicator (poisoning stragglers'
//!    in-flight operations), **shrink** to the dense survivor
//!    communicator, re-run the slab decomposition over the surviving `p′`
//!    ranks, re-fetch input from the caller's [`SlabSource`], and retry.
//! 4. A survivor whose input slab cannot be produced is agreed on the same
//!    way, and *every* survivor returns [`Error::Unrecoverable`] — a
//!    missing source is a symmetric, typed outcome, never a hang.
//!
//! An optional Parseval self-check ([`RecoverConfig::verify_energy`])
//! guards against silently accepting a wrong recomputation: for the
//! unnormalised kernels, `Σ|X|² = N·Σ|x|²` must hold across the surviving
//! world, or everyone returns [`Error::VerificationFailed`].

use crate::decomp::Decomp;
use crate::error::Error;
use crate::params::{ProblemSpec, TuningParams};
use crate::pipeline::Resilience;
use crate::real_env::{try_fft3_dist_traced, RunOutput, Variant};
use crate::trace::{EventKind, Recorder, TraceEvent};
use cfft::planner::Rigor;
use cfft::{Complex64, Direction};
use mpisim::{Comm, LintId, Severity};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a rank's input slab comes from when the decomposition changes.
///
/// After a shrink the surviving ranks own *different* x-slabs than before
/// (the slab decomposition is re-run over `p′` ranks), so recovery cannot
/// proceed from the slabs already in memory — the caller must be able to
/// (re)produce the input for an arbitrary `(spec, rank)`. Returning `None`
/// marks the slab unrecoverable; the driver agrees on that across the
/// survivors and everyone gets [`Error::Unrecoverable`].
pub trait SlabSource: Sync {
    /// This rank's x-slab for `spec` (whose `p` is the *current* world
    /// size), in x-y-z layout: `count_x(rank)·ny·nz` elements.
    fn slab(&self, spec: &ProblemSpec, rank: usize) -> Option<Vec<Complex64>>;

    /// Collective pre-fetch hook: [`run_recoverable`] calls it on every
    /// survivor before each attempt's [`SlabSource::slab`], passing the
    /// current communicator and the world ranks lost so far. Sources that
    /// must cooperate across ranks to reproduce input — [`ParitySource`]
    /// rebuilding a dead peer's slab from parity stripes — override it;
    /// the default does nothing.
    fn prepare(&self, _comm: &Comm, _spec: &ProblemSpec, _lost: &[usize]) {}
}

/// Validates `(spec, rank)` and returns this rank's x-extent
/// `(count, offset)`, or `None` when the decomposition cannot produce the
/// slab: an empty world, a rank outside it, or an x-split that fails to
/// cover the global extent. Shared by every [`SlabSource`] so no source
/// panics on a malformed spec.
fn slab_extent(spec: &ProblemSpec, rank: usize) -> Option<(usize, usize)> {
    if spec.p == 0 || rank >= spec.p {
        return None;
    }
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    if decomp.x.counts().iter().sum::<usize>() != spec.nx {
        return None;
    }
    Some((decomp.x.count(rank), decomp.x.offset(rank)))
}

/// Cuts `rank`'s x-slab of `spec` out of a full x-y-z array — the one
/// slab-cutting loop, shared by [`ReplicaSource`], the parity
/// reconstruction path of [`ParitySource`], and the recovery tests.
fn cut_slab(full: &[Complex64], spec: &ProblemSpec, rank: usize) -> Option<Vec<Complex64>> {
    if full.len() != spec.nx * spec.ny * spec.nz {
        return None;
    }
    let (nxl, xoff) = slab_extent(spec, rank)?;
    let mut v = Vec::with_capacity(nxl * spec.ny * spec.nz);
    for xl in 0..nxl {
        let x = xoff + xl;
        for y in 0..spec.ny {
            let row = (x * spec.ny + y) * spec.nz;
            v.extend_from_slice(&full[row..row + spec.nz]);
        }
    }
    Some(v)
}

/// Builds `rank`'s x-slab of `spec` element-by-element from a generator —
/// the zero-replication counterpart of [`cut_slab`], shared with
/// [`ComputeSource`].
fn build_slab(
    spec: &ProblemSpec,
    rank: usize,
    f: impl Fn(usize, usize, usize) -> Complex64,
) -> Option<Vec<Complex64>> {
    let (nxl, xoff) = slab_extent(spec, rank)?;
    let mut v = Vec::with_capacity(nxl * spec.ny * spec.nz);
    for xl in 0..nxl {
        for y in 0..spec.ny {
            for z in 0..spec.nz {
                v.push(f(xoff + xl, y, z));
            }
        }
    }
    Some(v)
}

/// A full in-memory replica of the global input array (x-y-z layout,
/// `nx·ny·nz` elements): any slab of any decomposition can be cut from it.
/// The cheap-but-memory-hungry end of the source spectrum.
pub struct ReplicaSource {
    full: Arc<Vec<Complex64>>,
}

impl ReplicaSource {
    /// Wraps a shared replica; `full.len()` must be `nx·ny·nz` for every
    /// spec this source is asked about (checked at slab time).
    pub fn new(full: Arc<Vec<Complex64>>) -> Self {
        ReplicaSource { full }
    }
}

impl SlabSource for ReplicaSource {
    fn slab(&self, spec: &ProblemSpec, rank: usize) -> Option<Vec<Complex64>> {
        cut_slab(&self.full, spec, rank)
    }
}

/// Recomputes input elements from a caller-supplied generator
/// `f(x, y, z)` — the zero-replication end of the source spectrum, for
/// inputs that are (re)derivable (test fields, analytic initial
/// conditions, checkpointed closures).
pub struct ComputeSource<F: Fn(usize, usize, usize) -> Complex64 + Sync> {
    f: F,
}

impl<F: Fn(usize, usize, usize) -> Complex64 + Sync> ComputeSource<F> {
    /// Wraps the element generator.
    pub fn new(f: F) -> Self {
        ComputeSource { f }
    }
}

impl<F: Fn(usize, usize, usize) -> Complex64 + Sync> SlabSource for ComputeSource<F> {
    fn slab(&self, spec: &ProblemSpec, rank: usize) -> Option<Vec<Complex64>> {
        build_slab(spec, rank, &self.f)
    }
}

/// A source that can never produce a slab — models lost, unreplicated
/// input. Recovery over this source deterministically returns
/// [`Error::Unrecoverable`] on every survivor.
pub struct NoSource;

impl SlabSource for NoSource {
    fn slab(&self, _spec: &ProblemSpec, _rank: usize) -> Option<Vec<Complex64>> {
        None
    }
}

/// XORs `piece` into `acc` on the raw f64 bit patterns. Bitwise XOR (not
/// floating-point addition) makes parity reconstruction *bit-exact*: no
/// rounding, no NaN absorption, and XOR-ing the same piece twice restores
/// the accumulator exactly.
fn xor_into(acc: &mut [Complex64], piece: &[Complex64]) {
    for (a, p) in acc.iter_mut().zip(piece) {
        a.re = f64::from_bits(a.re.to_bits() ^ p.re.to_bits());
        a.im = f64::from_bits(a.im.to_bits() ^ p.im.to_bits());
    }
}

/// An XOR-parity-striped snapshot of the distributed input (DESIGN.md §16):
/// each rank keeps its own slab plus **one** parity stripe of length
/// `q = ceil(max_slab/(p−1))`, so the whole checkpoint costs ≈ `1 + 1/(p−1)`
/// local slabs instead of the `p` slabs a full replica would — and any
/// *single* lost rank's slab is still reconstructible bit-exactly from the
/// survivors.
///
/// The striping: rank `r` cuts its (zero-padded) slab into `p−1` pieces of
/// length `q` and sends piece `j − (j>r)` to peer `j`; each rank XORs the
/// `p−1` pieces it receives into its parity stripe. Piece `k` of a lost
/// rank `x` then lives, XOR-masked by the survivors' own pieces, in the
/// parity stripe of rank `j = k + (k≥x)` — recoverable because every
/// masking piece survives.
pub struct Checkpoint {
    /// World ranks of the capture communicator, dense rank order.
    members: Vec<usize>,
    /// This rank's dense rank at capture time.
    cap_rank: usize,
    /// The spec captured (`spec.p == members.len()`).
    spec: ProblemSpec,
    /// Own-slab snapshot (unpadded).
    slab: Arc<Vec<Complex64>>,
    /// XOR of the `p−1` peer pieces this rank stores; empty when `p == 1`.
    parity: Vec<Complex64>,
    /// Stripe length `q`; 0 when `p == 1`.
    stripe: usize,
    /// Caller-chosen generation tag, for telling checkpoints apart.
    generation: u64,
}

impl Checkpoint {
    /// Collective capture over `comm`: snapshots `input` (this rank's
    /// x-slab of `spec`, `spec.p == comm.size()`) and exchanges parity
    /// stripes via one all-to-all so any one member's slab can later be
    /// rebuilt without full replication.
    pub fn capture(comm: &Comm, spec: &ProblemSpec, input: &[Complex64]) -> Checkpoint {
        Self::capture_tagged(comm, spec, input, 0)
    }

    /// [`Checkpoint::capture`] with an explicit generation tag.
    pub fn capture_tagged(
        comm: &Comm,
        spec: &ProblemSpec,
        input: &[Complex64],
        generation: u64,
    ) -> Checkpoint {
        let p = comm.size();
        let me = comm.rank();
        debug_assert_eq!(p, spec.p, "capture spec must match the communicator");
        let slab = Arc::new(input.to_vec());
        if p == 1 {
            return Checkpoint {
                members: comm.members(),
                cap_rank: 0,
                spec: *spec,
                slab,
                parity: Vec::new(),
                stripe: 0,
                generation,
            };
        }
        let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
        let max_len = decomp.x.max_count() * spec.ny * spec.nz;
        let q = max_len.div_ceil(p - 1);
        // Pieces 0..p−1 of the padded slab, in order, are exactly what the
        // peers 0..p (skipping self) receive: peer j < me gets piece j,
        // peer j > me gets piece j−1 — so the padded slab doubles as the
        // send buffer with counts {q everywhere, 0 to self}.
        let mut padded = input.to_vec();
        padded.resize(q * (p - 1), Complex64::ZERO);
        let counts: Vec<usize> = (0..p).map(|j| if j == me { 0 } else { q }).collect();
        let mut recv = vec![Complex64::ZERO; q * (p - 1)];
        comm.alltoallv(&padded, &counts, &counts, &mut recv);
        let mut parity = vec![Complex64::ZERO; q];
        for piece in recv.chunks_exact(q) {
            xor_into(&mut parity, piece);
        }
        Checkpoint {
            members: comm.members(),
            cap_rank: me,
            spec: *spec,
            slab,
            parity,
            stripe: q,
            generation,
        }
    }

    /// The generation tag this capture was taken with.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// World ranks of the capture membership, dense rank order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Elements this rank stores for the checkpoint: the own-slab snapshot
    /// plus the parity stripe (the ≈`slab/(p−1)` overhead that replaces a
    /// full replica).
    pub fn memory_elements(&self) -> usize {
        self.slab.len() + self.parity.len()
    }

    /// Elements of parity-stripe overhead beyond the own-slab snapshot.
    pub fn parity_elements(&self) -> usize {
        self.parity.len()
    }

    /// Wraps the checkpoint in a [`SlabSource`] for [`run_recoverable`].
    pub fn into_source(self) -> ParitySource {
        ParitySource {
            ckpt: self,
            state: Mutex::new(ParityState::Own),
        }
    }
}

/// What [`ParitySource::prepare`] concluded about the current membership.
enum ParityState {
    /// Membership unchanged (or `prepare` not called yet): serve the
    /// own-slab snapshot directly.
    Own,
    /// One capture member is gone; the full array was rebuilt from parity
    /// and any survivor's slab of any decomposition can be cut from it.
    Rebuilt(Arc<Vec<Complex64>>),
    /// The capture cannot serve the current membership (reported as MC007).
    Stale,
}

/// A [`SlabSource`] backed by a [`Checkpoint`]: serves the captured slab
/// while the membership is intact, rebuilds a single lost member's data
/// bit-exactly from the XOR parity stripes inside
/// [`SlabSource::prepare`], and refuses (with an `MC007` finding) when
/// more than one member is gone or the membership grew past the capture.
pub struct ParitySource {
    ckpt: Checkpoint,
    state: Mutex<ParityState>,
}

impl ParitySource {
    /// The number of capture members missing from `live`, as capture
    /// ranks; `None` if `live` contains a rank the capture never had.
    fn missing_capture_ranks(&self, live: &[usize]) -> Option<Vec<usize>> {
        for w in live {
            if !self.ckpt.members.contains(w) {
                return None;
            }
        }
        Some(
            (0..self.ckpt.members.len())
                .filter(|&r| !live.contains(&self.ckpt.members[r]))
                .collect(),
        )
    }

    /// Rebuilds the full global array from the survivors' slabs + parity
    /// stripes after capture rank `x` was lost. Collective over `comm`
    /// (whose members must be exactly the capture members minus `x` — the
    /// caller verified this, so the `None` arms below are unreachable; they
    /// exist because a panic on a recovery path would kill a survivor).
    fn rebuild(&self, comm: &Comm, lost: usize) -> Option<Arc<Vec<Complex64>>> {
        let ck = &self.ckpt;
        let p = ck.members.len();
        let q = ck.stripe;
        let spec = &ck.spec;
        let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
        // Transient gather: every survivor contributes its zero-padded
        // slab followed by its parity stripe — q·(p−1) + q = q·p elements
        // each, so survivor i's block starts at i·q·p. The gather runs
        // before any bail-out so no survivor leaves peers hanging in it.
        let mut contrib = ck.slab.to_vec();
        contrib.resize(q * (p - 1), Complex64::ZERO);
        contrib.extend_from_slice(&ck.parity);
        let gathered = comm.allgather(&contrib);
        // Survivor i (comm rank order) is capture rank cap_of[i].
        let live = comm.members();
        let mut cap_of = Vec::with_capacity(live.len());
        for w in &live {
            cap_of.push(ck.members.iter().position(|m| m == w)?);
        }
        let block = |cap: usize| -> Option<&[Complex64]> {
            let i = cap_of.iter().position(|&c| c == cap)?;
            gathered.get(i * q * p..(i + 1) * q * p)
        };
        // Piece k of the lost slab sits in the parity stripe of capture
        // rank j = k + (k≥x), masked by every other survivor's piece
        // j − (j>r) — XOR them away.
        let mut lost_padded = vec![Complex64::ZERO; q * (p - 1)];
        for k in 0..p - 1 {
            let j = k + usize::from(k >= lost);
            let holder = block(j)?;
            let piece = &mut lost_padded[k * q..(k + 1) * q];
            piece.copy_from_slice(&holder[q * (p - 1)..q * p]);
            for &r in &cap_of {
                if r == j || r == lost {
                    continue;
                }
                let kr = j - usize::from(j > r);
                xor_into(piece, block(r)?.get(kr * q..(kr + 1) * q)?);
            }
        }
        // Slabs are contiguous x-row ranges of the full array, so the full
        // array is the capture-rank-ordered concatenation of the (unpadded)
        // slabs.
        let mut full = Vec::with_capacity(spec.nx * spec.ny * spec.nz);
        for cap in 0..p {
            let len = decomp.x.count(cap) * spec.ny * spec.nz;
            if cap == lost {
                full.extend_from_slice(lost_padded.get(..len)?);
            } else {
                full.extend_from_slice(block(cap)?.get(..len)?);
            }
        }
        Some(Arc::new(full))
    }
}

impl SlabSource for ParitySource {
    fn slab(&self, spec: &ProblemSpec, rank: usize) -> Option<Vec<Complex64>> {
        match &*self.state.lock() {
            ParityState::Stale => None,
            ParityState::Rebuilt(full) => cut_slab(full, spec, rank),
            ParityState::Own => {
                // No membership change: the capture decomposition must
                // still be in force for the snapshot to be this rank's
                // slab.
                (*spec == self.ckpt.spec && rank == self.ckpt.cap_rank)
                    .then(|| self.ckpt.slab.to_vec())
            }
        }
    }

    fn prepare(&self, comm: &Comm, _spec: &ProblemSpec, _lost: &[usize]) {
        let live = comm.members();
        let state = match self.missing_capture_ranks(&live) {
            Some(missing) if missing.is_empty() => ParityState::Own,
            Some(missing) if missing.len() == 1 => {
                if self.ckpt.members.len() == 1 {
                    // Unreachable in practice (a live comm is non-empty),
                    // but a 1-rank capture has no parity to rebuild from.
                    ParityState::Stale
                } else {
                    match self.rebuild(comm, missing[0]) {
                        Some(full) => ParityState::Rebuilt(full),
                        // Unreachable after the membership check above;
                        // degrade to no-source rather than panic.
                        None => ParityState::Stale,
                    }
                }
            }
            verdict => {
                let why = match verdict {
                    None => "the membership has ranks the capture never saw".to_string(),
                    Some(missing) => format!(
                        "{} capture members are gone — XOR parity covers one loss",
                        missing.len()
                    ),
                };
                comm.report_finding(
                    LintId::StaleCheckpoint,
                    Severity::Error,
                    format!(
                        "checkpoint generation {} (members {:?}) cannot serve \
                         membership {:?}: {}",
                        self.ckpt.generation, self.ckpt.members, live, why
                    ),
                );
                ParityState::Stale
            }
        };
        *self.state.lock() = state;
    }
}

/// Policy knobs of the recovery driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoverConfig {
    /// Resilience policy for each attempt. The driver *forces* a stall
    /// watchdog (default 200 ms) when none is set: without one, a wait on
    /// a dead peer blocks forever and the failure is never typed.
    pub resilience: Resilience,
    /// Upper bound on transform attempts (first try + retries).
    pub max_attempts: u32,
    /// Relative tolerance for the post-recovery Parseval energy check;
    /// `None` skips verification. The check is collective over the
    /// surviving communicator and fails everyone together.
    pub verify_energy: Option<f64>,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig {
            resilience: Resilience::default(),
            max_attempts: 3,
            verify_energy: Some(1e-6),
        }
    }
}

/// What a successful (possibly recovered) run produced.
pub struct RecoverOutcome {
    /// This rank's output slab under the *final* decomposition.
    pub output: RunOutput,
    /// The spec the final attempt ran with (`spec.p` = surviving ranks).
    pub spec: ProblemSpec,
    /// This rank's dense rank in the final communicator.
    pub rank: usize,
    /// The shrunk communicator, when recovery re-built one (`None` means
    /// the original communicator completed the run and remains valid).
    pub comm: Option<Comm>,
    /// Transform attempts consumed (1 for a clean run).
    pub attempts: u32,
    /// World ranks lost across all recoveries, ascending.
    pub lost: Vec<usize>,
}

/// Flag bits the per-attempt consensus agrees on.
const FLAG_FAILURE: u64 = 1; // a failure-class error: recoverable by shrink
const FLAG_FATAL: u64 = 2; // a non-failure error: retrying cannot help
const FLAG_NO_SOURCE: u64 = 4; // a survivor's input slab has no source

fn classify(e: &Error) -> u64 {
    match e {
        Error::RankFailed { .. }
        | Error::Revoked { .. }
        | Error::Stalled { .. }
        | Error::Dropped { .. } => FLAG_FAILURE,
        _ => FLAG_FATAL,
    }
}

/// Runs the distributed transform with elastic rank-failure recovery.
///
/// Collective over `comm`: every member must call it with consistent
/// arguments and an equivalent `source`. On a peer death mid-transform the
/// survivors converge (agree → revoke → shrink → re-decompose → re-fetch →
/// retry) and each returns its slab of the recomputed result under the
/// shrunk world; the caller learns the new geometry from the outcome. All
/// error returns are symmetric across survivors except the per-rank typed
/// error of a fatal (non-failure) attempt.
#[allow(clippy::too_many_arguments)]
pub fn run_recoverable(
    comm: &Comm,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    dir: Direction,
    rigor: Rigor,
    source: &dyn SlabSource,
    cfg: &RecoverConfig,
    recorder: &mut dyn Recorder,
) -> Result<RecoverOutcome, Error> {
    let mut resilience = cfg.resilience;
    if resilience.stall_timeout.is_none() {
        resilience.stall_timeout = Some(Duration::from_millis(200));
    }
    let started = Instant::now();
    let mut owned: Option<Comm> = None;
    let mut spec_cur = spec;
    let mut params_cur = params;
    let mut lost: Vec<usize> = Vec::new();
    let mut last_err: Option<Error> = None;

    for attempt in 1..=cfg.max_attempts.max(1) {
        let cur = owned.as_ref().unwrap_or(comm);
        spec_cur.p = cur.size();

        // Fetch this attempt's input and agree on availability before
        // spending any compute: one unrecoverable slab fails everyone with
        // the same typed error. The prepare hook runs first so cooperative
        // sources (parity reconstruction) can rebuild lost data
        // collectively.
        source.prepare(cur, &spec_cur, &lost);
        let slab = source.slab(&spec_cur, cur.rank());
        let miss_flag = if slab.is_some() { 0 } else { FLAG_NO_SOURCE };
        let (flags, _) = cur.agree(miss_flag);
        if flags & FLAG_NO_SOURCE != 0 {
            return Err(Error::Unrecoverable(
                "a survivor's input slab has no surviving source",
            ));
        }
        let slab = slab.ok_or(Error::Internal("agreed-present slab missing"))?;

        let result = try_fft3_dist_traced(
            cur,
            spec_cur,
            variant,
            params_cur,
            dir,
            rigor,
            &slab,
            &resilience,
            recorder,
        );

        // Per-attempt consensus: ranks that finished cleanly must still
        // join recovery when any peer erred (the dead rank's neighbours
        // can be stuck while distant ranks completed every tile).
        let my_flag = result.as_ref().err().map_or(0, classify);
        let (flags, agreed_failed) = cur.agree(my_flag);

        if flags == 0 {
            let output = result?;
            if let Some(tol) = cfg.verify_energy {
                verify_parseval(cur, &spec_cur, &slab, &output, tol)?;
            }
            return Ok(RecoverOutcome {
                output,
                spec: spec_cur,
                rank: cur.rank(),
                comm: owned,
                attempts: attempt,
                lost,
            });
        }
        if flags & FLAG_FATAL != 0 {
            // Retrying cannot fix a parameter or invariant error. Each rank
            // reports its own typed error; clean ranks learn a peer's.
            return Err(result.err().unwrap_or(Error::Unrecoverable(
                "a peer hit a non-recoverable error during the transform",
            )));
        }
        last_err = result.err();

        // Failure-class error somewhere: rebuild the world. Revoke first so
        // any straggler still progressing an old exchange is poisoned out
        // of it instead of waiting on a peer that has moved on.
        cur.revoke();
        if recorder.enabled() {
            let t = started.elapsed().as_secs_f64();
            for &r in &agreed_failed {
                recorder.record(TraceEvent {
                    start: t,
                    end: t,
                    kind: EventKind::RankLost { rank: r },
                });
            }
        }
        let from = cur.size();
        let shrunk = cur.shrink();
        let to = shrunk.size();
        if recorder.enabled() {
            let t = started.elapsed().as_secs_f64();
            recorder.record(TraceEvent {
                start: t,
                end: t,
                kind: EventKind::Shrink { from, to },
            });
        }
        for r in agreed_failed {
            if !lost.contains(&r) {
                lost.push(r);
            }
        }
        lost.sort_unstable();
        if to != from {
            // The decomposition changes: re-seed the schedule parameters
            // for the surviving world (thread budget is preserved). The
            // caller's hand-tuned schedule was tuned for the old `p`.
            let mut p2 = spec_cur;
            p2.p = to;
            let threads = params_cur.threads;
            params_cur = TuningParams::seed(&p2);
            params_cur.threads = threads;
        }
        owned = Some(shrunk);
    }
    Err(last_err.unwrap_or(Error::Unrecoverable("recovery attempts exhausted")))
}

/// Parseval self-check over the surviving world: for the unnormalised
/// kernels `Σ|X|² = N·Σ|x|²` (both directions), within `tol` relative.
fn verify_parseval(
    comm: &Comm,
    spec: &ProblemSpec,
    input: &[Complex64],
    output: &RunOutput,
    tol: f64,
) -> Result<(), Error> {
    let e_in: f64 = input.iter().map(|c| c.norm_sqr()).sum();
    let e_out: f64 = output.data.iter().map(|c| c.norm_sqr()).sum();
    let sums = comm.allreduce_sum(&[e_in, e_out]);
    let n = (spec.nx * spec.ny * spec.nz) as f64;
    let expect = n * sums[0];
    if (sums[1] - expect).abs() > tol * expect.max(f64::MIN_POSITIVE) {
        return Err(Error::VerificationFailed);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::test_field;

    #[test]
    fn replica_source_cuts_the_same_slab_as_the_direct_builder() {
        let spec = ProblemSpec {
            nx: 6,
            ny: 5,
            nz: 4,
            p: 3,
        };
        let full = Arc::new(crate::serial::full_test_array(spec.nx, spec.ny, spec.nz));
        let src = ReplicaSource::new(full);
        for rank in 0..spec.p {
            let direct = crate::real_env::local_test_slab(&spec, rank);
            assert_eq!(src.slab(&spec, rank).as_deref(), Some(&direct[..]));
        }
        // Wrong-size replica refuses rather than mis-slicing.
        let short = ReplicaSource::new(Arc::new(vec![Complex64::ZERO; 7]));
        assert!(short.slab(&spec, 0).is_none());
    }

    #[test]
    fn compute_source_matches_replica_source_on_every_decomposition() {
        let base = ProblemSpec {
            nx: 8,
            ny: 6,
            nz: 3,
            p: 4,
        };
        let full = Arc::new(crate::serial::full_test_array(base.nx, base.ny, base.nz));
        let replica = ReplicaSource::new(full);
        let compute = ComputeSource::new(test_field);
        for p in 1..=4 {
            let spec = ProblemSpec { p, ..base };
            for rank in 0..p {
                assert_eq!(
                    compute.slab(&spec, rank),
                    replica.slab(&spec, rank),
                    "p={p} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn no_source_never_produces() {
        let spec = ProblemSpec::cube(4, 2);
        assert!(NoSource.slab(&spec, 0).is_none());
    }

    #[test]
    fn sources_refuse_malformed_specs_instead_of_panicking() {
        let spec = ProblemSpec {
            nx: 6,
            ny: 5,
            nz: 4,
            p: 3,
        };
        let full = Arc::new(crate::serial::full_test_array(spec.nx, spec.ny, spec.nz));
        let src = ReplicaSource::new(full);
        // A rank outside the decomposition used to panic in the axis
        // split; it must refuse instead — `run_recoverable` turns the
        // refusal into a typed `Unrecoverable`.
        assert!(src.slab(&spec, spec.p).is_none());
        assert!(src.slab(&spec, usize::MAX).is_none());
        let empty = ProblemSpec { p: 0, ..spec };
        assert!(src.slab(&empty, 0).is_none());
        // Same guards on the generator-backed source.
        let compute = ComputeSource::new(test_field);
        assert!(compute.slab(&spec, spec.p).is_none());
        assert!(compute.slab(&empty, 0).is_none());
    }

    #[test]
    fn xor_parity_round_trips_bit_patterns() {
        let a = Complex64::new(1.5, -0.000123);
        let b = Complex64::new(-7.25e100, 3.0);
        let mut acc = vec![a, b];
        let piece = vec![b, a];
        xor_into(&mut acc, &piece);
        xor_into(&mut acc, &piece);
        assert_eq!(acc[0].re.to_bits(), a.re.to_bits());
        assert_eq!(acc[1].im.to_bits(), b.im.to_bits());
    }

    /// XOR-parity reconstruction: capture once, then for every possible
    /// single loss the survivors rebuild the lost slab bit-exactly, and
    /// the parity-backed source agrees with the replica-backed one (which
    /// in turn agrees with the compute-backed one) on every slab of the
    /// shrunk decomposition.
    #[test]
    fn parity_checkpoint_rebuilds_any_single_lost_rank_bit_exactly() {
        let spec = ProblemSpec {
            nx: 7,
            ny: 5,
            nz: 3,
            p: 4,
        };
        let full = Arc::new(crate::serial::full_test_array(spec.nx, spec.ny, spec.nz));
        let fullc = Arc::clone(&full);
        mpisim::run(spec.p, move |comm| {
            let me = comm.rank();
            let own = crate::real_env::local_test_slab(&spec, me);
            let ckpt = Checkpoint::capture(&comm, &spec, &own);
            // Overhead: one stripe ≈ a (p−1)-th of the largest slab, not a
            // full replica.
            assert_eq!(ckpt.parity_elements(), (2 * 5 * 3usize).div_ceil(3));
            assert_eq!(ckpt.memory_elements(), own.len() + ckpt.parity_elements());
            let src = ckpt.into_source();
            let replica = ReplicaSource::new(Arc::clone(&fullc));
            let compute = ComputeSource::new(test_field);
            for lost in 0..spec.p {
                // The "lost" rank sits this round out; survivors regroup.
                let color = if me == lost { -1 } else { 0 };
                let Some(sub) = comm.split(color, me as i64) else {
                    continue;
                };
                let mut spec2 = spec;
                spec2.p = sub.size();
                src.prepare(&sub, &spec2, &[lost]);
                for r in 0..spec2.p {
                    let got = src.slab(&spec2, r).expect("rebuilt slab");
                    let want = replica.slab(&spec2, r).expect("replica slab");
                    assert_eq!(got, want, "lost={lost} rank={r}");
                    assert_eq!(compute.slab(&spec2, r).as_ref(), Some(&want));
                }
            }
            // Intact membership again: the source serves the snapshot.
            src.prepare(&comm, &spec, &[]);
            assert_eq!(src.slab(&spec, me), Some(own));
        });
    }

    /// Two losses exceed what one XOR stripe covers: the source refuses
    /// (slab `None` → `Unrecoverable` upstream) and files the MC007
    /// stale-checkpoint lint in checked runs.
    #[test]
    fn checkpoint_stale_after_two_losses_files_mc007() {
        use mpisim::{run_with_config, CheckConfig, RunConfig};
        let spec = ProblemSpec {
            nx: 8,
            ny: 4,
            nz: 3,
            p: 4,
        };
        let outcome = run_with_config(
            spec.p,
            RunConfig::checked(CheckConfig::default()),
            move |comm| {
                let me = comm.rank();
                let own = crate::real_env::local_test_slab(&spec, me);
                let ckpt = Checkpoint::capture_tagged(&comm, &spec, &own, 7);
                assert_eq!(ckpt.generation(), 7);
                assert_eq!(ckpt.members(), &[0, 1, 2, 3]);
                let src = ckpt.into_source();
                let color = if me <= 1 { -1 } else { 0 };
                if let Some(sub) = comm.split(color, me as i64) {
                    let mut spec2 = spec;
                    spec2.p = sub.size();
                    src.prepare(&sub, &spec2, &[0, 1]);
                    assert!(src.slab(&spec2, sub.rank()).is_none());
                }
            },
        );
        assert!(outcome.results.is_some(), "no deadlock");
        let mc007 = outcome
            .report
            .findings
            .iter()
            .filter(|f| f.id == mpisim::LintId::StaleCheckpoint)
            .count();
        assert_eq!(mc007, 2, "each survivor reports the stale checkpoint");
    }

    /// End-to-end: a rank dies mid-transform and the survivors recover the
    /// victim's input from parity stripes alone — no replica anywhere —
    /// then match the serial oracle.
    #[test]
    fn run_recoverable_heals_a_crash_from_parity_checkpoints() {
        use crate::real_env::compare_with_serial;
        use crate::serial::fft3_serial;
        let spec = ProblemSpec::cube(8, 3);
        let params = TuningParams::seed(&spec);
        let mut reference = crate::serial::full_test_array(spec.nx, spec.ny, spec.nz);
        fft3_serial(
            &mut reference,
            spec.nx,
            spec.ny,
            spec.nz,
            Direction::Forward,
        );
        let reference = Arc::new(reference);
        let victim = 1;
        let faults = faultplan::FaultPlan::seeded(0xc0ffee).with_rank_crash(victim, 1);
        let results = mpisim::run_crashable(spec.p, faults, move |comm| {
            let own = crate::real_env::local_test_slab(&spec, comm.rank());
            let src = Checkpoint::capture(&comm, &spec, &own).into_source();
            let outcome = run_recoverable(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &src,
                &RecoverConfig::default(),
                &mut crate::trace::NoopRecorder,
            )
            .expect("parity recovery succeeds");
            assert_eq!(outcome.lost, vec![victim]);
            assert_eq!(outcome.spec.p, spec.p - 1);
            compare_with_serial(&outcome.spec, outcome.rank, &outcome.output, &reference)
        });
        let tol = 1e-9 * spec.len() as f64;
        for (rank, err) in results.into_iter().enumerate() {
            match err {
                None => assert_eq!(rank, victim),
                Some(e) => assert!(e < tol, "rank {rank} err {e}"),
            }
        }
    }

    #[test]
    fn error_classification_separates_failure_from_fatal() {
        assert_eq!(
            classify(&Error::RankFailed { tile: 0, rank: 1 }),
            FLAG_FAILURE
        );
        assert_eq!(classify(&Error::Revoked { tile: 0 }), FLAG_FAILURE);
        assert_eq!(
            classify(&Error::Stalled {
                tile: 0,
                round: 0,
                peer: 0
            }),
            FLAG_FAILURE
        );
        assert_eq!(classify(&Error::Internal("bug")), FLAG_FATAL);
        assert_eq!(classify(&Error::VerificationFailed), FLAG_FATAL);
    }
}
