//! Per-tile event tracing behind the Figure 8/9 breakdowns.
//!
//! [`StepTimes`] answers "how much time went to each category"; this module
//! answers *when* — which tile was packing while which all-to-all was in
//! flight, how many `MPI_Test` polls each tile absorbed, and how much of the
//! communication was actually hidden behind compute. Both backends emit the
//! same [`TraceEvent`] schema: the mpisim backend stamps wall-clock seconds
//! since the run started, the simnet backend stamps virtual seconds.
//!
//! Recording goes through the [`Recorder`] trait so the hot paths stay
//! untouched when tracing is off: the default [`NoopRecorder`] reports
//! `enabled() == false` and every instrumentation site checks that flag
//! before computing timestamps.

use crate::breakdown::StepTimes;
use std::fmt::Write as _;

/// What happened during one traced span. Compute phases carry the tile and
/// the sub-tile block index within it (always 0 on the model-level simulated
/// backend, which does not iterate sub-tiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The upfront 1-D FFT along z over the whole local slab.
    Fftz,
    /// The upfront local z-x-y transposition.
    Transpose,
    /// 1-D FFTs along y for one sub-tile block of a tile.
    Ffty { tile: usize, subtile: usize },
    /// Packing one sub-tile block into the send buffer.
    Pack { tile: usize, subtile: usize },
    /// Posting the non-blocking all-to-all for a tile; `bytes` is the total
    /// payload this rank contributes to the exchange.
    PostA2a { tile: usize, bytes: u64 },
    /// One `MPI_Test` poll of a tile's in-flight all-to-all; `completed`
    /// reports the request state the poll observed.
    Test { tile: usize, completed: bool },
    /// Blocking completion of a tile's all-to-all (the stall, if any).
    Wait { tile: usize },
    /// Unpacking one sub-tile block of a received tile.
    Unpack { tile: usize, subtile: usize },
    /// 1-D FFTs along x for one sub-tile block of a received tile.
    Fftx { tile: usize, subtile: usize },
    /// The resilient driver took a degradation step while waiting on
    /// `tile` — the recovery becoming visible in the timeline.
    Degrade { tile: usize, action: DegradeAction },
    /// The recovery driver observed the death of world rank `rank`
    /// (zero-width marker; see `crate::recover`).
    RankLost { rank: usize },
    /// The recovery driver shrank the communicator from `from` survivors to
    /// `to` before re-decomposing (zero-width marker).
    Shrink { from: usize, to: usize },
    /// An integrity check caught silent data corruption on `tile` — wire
    /// checksum, staging-buffer hash, or ABFT checksum line (zero-width
    /// marker; the timeline renders it as an `X`).
    Corrupt { tile: usize },
}

/// One rung of the degradation ladder the resilient pipeline climbs when a
/// tile's all-to-all stalls (in this order; see `pipeline::try_run_new`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// Multiply the `F*` polling frequencies: progression was starving.
    BoostPolls,
    /// Halve the window `W`: fewer concurrent exchanges contending.
    ShrinkWindow,
    /// Abandon overlap: drain everything in flight and finish the remaining
    /// tiles with blocking (FFTW-style) exchanges.
    Fallback,
    /// Re-pack and re-post a tile's exchange after an integrity check
    /// rejected the staged payload (silent-corruption healing).
    Retransmit,
}

impl DegradeAction {
    /// Short label used in JSON and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DegradeAction::BoostPolls => "boost-polls",
            DegradeAction::ShrinkWindow => "shrink-window",
            DegradeAction::Fallback => "fallback",
            DegradeAction::Retransmit => "retransmit",
        }
    }
}

impl EventKind {
    /// The tile this event belongs to, if any.
    pub fn tile(&self) -> Option<usize> {
        match *self {
            EventKind::Fftz
            | EventKind::Transpose
            | EventKind::RankLost { .. }
            | EventKind::Shrink { .. } => None,
            EventKind::Ffty { tile, .. }
            | EventKind::Pack { tile, .. }
            | EventKind::PostA2a { tile, .. }
            | EventKind::Test { tile, .. }
            | EventKind::Wait { tile }
            | EventKind::Unpack { tile, .. }
            | EventKind::Fftx { tile, .. }
            | EventKind::Degrade { tile, .. }
            | EventKind::Corrupt { tile } => Some(tile),
        }
    }

    /// Short label matching the [`StepTimes`] entry names.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Fftz => "FFTz",
            EventKind::Transpose => "Transpose",
            EventKind::Ffty { .. } => "FFTy",
            EventKind::Pack { .. } => "Pack",
            EventKind::PostA2a { .. } => "Ialltoall",
            EventKind::Test { .. } => "Test",
            EventKind::Wait { .. } => "Wait",
            EventKind::Unpack { .. } => "Unpack",
            EventKind::Fftx { .. } => "FFTx",
            EventKind::Degrade { .. } => "Degrade",
            EventKind::RankLost { .. } => "RankLost",
            EventKind::Shrink { .. } => "Shrink",
            EventKind::Corrupt { .. } => "Corrupt",
        }
    }

    /// `true` for the CPU-busy phases that can hide communication.
    pub fn is_compute(&self) -> bool {
        matches!(
            self,
            EventKind::Fftz
                | EventKind::Transpose
                | EventKind::Ffty { .. }
                | EventKind::Pack { .. }
                | EventKind::Unpack { .. }
                | EventKind::Fftx { .. }
        )
    }
}

/// One timestamped span on one rank. Times are seconds since the rank
/// started the transform (wall clock on mpisim, virtual on simnet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Span start, seconds.
    pub start: f64,
    /// Span end, seconds; `end >= start`.
    pub end: f64,
    /// What the span was.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Sink for trace events. Instrumentation sites must check [`enabled`]
/// before doing any timestamp work, so a disabled recorder costs one
/// non-inlined call per span and nothing else.
///
/// [`enabled`]: Recorder::enabled
pub trait Recorder {
    /// `false` to make every instrumentation site a no-op.
    fn enabled(&self) -> bool;
    /// Appends one event to the rank's stream.
    fn record(&mut self, event: TraceEvent);
}

/// The default recorder: tracing off.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// In-memory recorder collecting the rank's full event stream.
#[derive(Debug, Default, Clone)]
pub struct MemRecorder {
    /// Events in the order they were recorded.
    pub events: Vec<TraceEvent>,
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

impl MemRecorder {
    /// Takes the collected events, leaving the recorder empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Rebuilds the Figure 8 per-category breakdown from an event stream.
///
/// Each span contributes its duration to its category. `Test` spans that
/// fall inside a compute span (the simulated backend charges poll overhead
/// *during* a phase) are subtracted from the surrounding compute category,
/// so compute categories count pure compute and `test` counts every poll —
/// matching how both backends accumulate [`StepTimes`] directly.
pub fn derive_step_times(events: &[TraceEvent]) -> StepTimes {
    let mut steps = StepTimes::default();
    let mut compute: Vec<(f64, f64, &'static str)> = Vec::new();
    for ev in events {
        let d = ev.duration();
        match ev.kind {
            EventKind::Fftz => steps.fftz += d,
            EventKind::Transpose => steps.transpose += d,
            EventKind::Ffty { .. } => steps.ffty += d,
            EventKind::Pack { .. } => steps.pack += d,
            EventKind::PostA2a { .. } => steps.ialltoall += d,
            EventKind::Test { .. } => steps.test += d,
            EventKind::Wait { .. } => steps.wait += d,
            EventKind::Unpack { .. } => steps.unpack += d,
            EventKind::Fftx { .. } => steps.fftx += d,
            // Recovery markers are instants, not time spent in a
            // category; they do not contribute to the breakdown.
            EventKind::Degrade { .. }
            | EventKind::RankLost { .. }
            | EventKind::Shrink { .. }
            | EventKind::Corrupt { .. } => {}
        }
        if ev.kind.is_compute() {
            compute.push((ev.start, ev.end, ev.kind.label()));
        }
    }
    // Subtract nested polls from their surrounding compute span's category.
    compute.sort_by(|a, b| a.0.total_cmp(&b.0));
    for ev in events {
        if let EventKind::Test { .. } = ev.kind {
            let idx = compute.partition_point(|&(s, _, _)| s <= ev.start);
            if idx == 0 {
                continue;
            }
            let (_, end, label) = compute[idx - 1];
            if ev.end <= end + 1e-12 {
                let d = ev.duration();
                match label {
                    "FFTz" => steps.fftz -= d,
                    "Transpose" => steps.transpose -= d,
                    "FFTy" => steps.ffty -= d,
                    "Pack" => steps.pack -= d,
                    "Unpack" => steps.unpack -= d,
                    "FFTx" => steps.fftx -= d,
                    _ => unreachable!(),
                }
            }
        }
    }
    steps
}

/// How well a rank's communication hid behind its compute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapSummary {
    /// Union of the per-tile in-flight intervals (post start → wait end).
    pub inflight: f64,
    /// Portion of [`inflight`](Self::inflight) during which a compute span
    /// was running — communication genuinely hidden behind compute.
    pub covered: f64,
    /// `covered / inflight`, or 0 when nothing was in flight.
    pub coverage: f64,
    /// Total time blocked in `Wait` — the stall the overlap failed to hide.
    pub wait_stall: f64,
    /// Number of `MPI_Test` polls issued.
    pub tests: usize,
    /// Polls that observed a completed request.
    pub tests_completed: usize,
    /// Number of communication tiles observed (tiles with a `PostA2a`).
    pub tiles: usize,
    /// `tests / tiles`, or 0 with no tiles.
    pub tests_per_tile: f64,
}

impl OverlapSummary {
    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"inflight_s\":{},\"covered_s\":{},\"coverage\":{},\
             \"wait_stall_s\":{},\"tests\":{},\"tests_completed\":{},\
             \"tiles\":{},\"tests_per_tile\":{}}}",
            json_f64(self.inflight),
            json_f64(self.covered),
            json_f64(self.coverage),
            json_f64(self.wait_stall),
            self.tests,
            self.tests_completed,
            self.tiles,
            json_f64(self.tests_per_tile),
        )
    }
}

/// Merges possibly-overlapping intervals into a sorted disjoint list.
fn merge_intervals(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|&(s, e)| e > s);
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of the intersection of two disjoint sorted interval lists.
fn intersection_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut total) = (0, 0, 0.0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Computes the overlap-efficiency summary for one rank's event stream.
///
/// A tile's all-to-all is considered in flight from its `PostA2a` start to
/// its `Wait` end; the covered portion is the intersection of the in-flight
/// union with the union of compute spans.
pub fn overlap_summary(events: &[TraceEvent]) -> OverlapSummary {
    let mut post: Vec<(usize, f64)> = Vec::new();
    let mut wait_end: Vec<(usize, f64)> = Vec::new();
    let mut compute: Vec<(f64, f64)> = Vec::new();
    let mut wait_stall = 0.0;
    let mut tests = 0usize;
    let mut tests_completed = 0usize;
    for ev in events {
        match ev.kind {
            EventKind::PostA2a { tile, .. } => post.push((tile, ev.start)),
            EventKind::Wait { tile } => {
                wait_end.push((tile, ev.end));
                wait_stall += ev.duration();
            }
            EventKind::Test { completed, .. } => {
                tests += 1;
                tests_completed += usize::from(completed);
            }
            _ => {}
        }
        if ev.kind.is_compute() {
            compute.push((ev.start, ev.end));
        }
    }
    let inflight_iv: Vec<(f64, f64)> = post
        .iter()
        .filter_map(|&(tile, start)| {
            wait_end
                .iter()
                .find(|&&(t, _)| t == tile)
                .map(|&(_, end)| (start, end))
        })
        .collect();
    let inflight_iv = merge_intervals(inflight_iv);
    let compute_iv = merge_intervals(compute);
    let inflight: f64 = inflight_iv.iter().map(|&(s, e)| e - s).sum();
    let covered = intersection_len(&inflight_iv, &compute_iv);
    let tiles = post.len();
    OverlapSummary {
        inflight,
        covered,
        coverage: if inflight > 0.0 {
            covered / inflight
        } else {
            0.0
        },
        wait_stall,
        tests,
        tests_completed,
        tiles,
        tests_per_tile: if tiles > 0 {
            tests as f64 / tiles as f64
        } else {
            0.0
        },
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn write_event_json(s: &mut String, ev: &TraceEvent) {
    let mut tile = None;
    let mut subtile = None;
    let mut bytes = None;
    let mut completed = None;
    let mut action = None;
    let mut rank = None;
    let mut shrink = None;
    match ev.kind {
        EventKind::Fftz | EventKind::Transpose => {}
        EventKind::Ffty {
            tile: t,
            subtile: st,
        }
        | EventKind::Pack {
            tile: t,
            subtile: st,
        }
        | EventKind::Unpack {
            tile: t,
            subtile: st,
        }
        | EventKind::Fftx {
            tile: t,
            subtile: st,
        } => {
            tile = Some(t);
            subtile = Some(st);
        }
        EventKind::PostA2a { tile: t, bytes: b } => {
            tile = Some(t);
            bytes = Some(b);
        }
        EventKind::Test {
            tile: t,
            completed: c,
        } => {
            tile = Some(t);
            completed = Some(c);
        }
        EventKind::Wait { tile: t } | EventKind::Corrupt { tile: t } => tile = Some(t),
        EventKind::Degrade { tile: t, action: a } => {
            tile = Some(t);
            action = Some(a);
        }
        EventKind::RankLost { rank: r } => rank = Some(r),
        EventKind::Shrink { from, to } => shrink = Some((from, to)),
    };
    write!(
        s,
        "{{\"kind\":\"{}\",\"start\":{},\"end\":{}",
        ev.kind.label(),
        json_f64(ev.start),
        json_f64(ev.end)
    )
    .expect("write to String cannot fail");
    if let Some(t) = tile {
        write!(s, ",\"tile\":{t}").expect("write to String cannot fail");
    }
    if let Some(st) = subtile {
        write!(s, ",\"subtile\":{st}").expect("write to String cannot fail");
    }
    if let Some(b) = bytes {
        write!(s, ",\"bytes\":{b}").expect("write to String cannot fail");
    }
    if let Some(c) = completed {
        write!(s, ",\"completed\":{c}").expect("write to String cannot fail");
    }
    if let Some(a) = action {
        write!(s, ",\"action\":\"{}\"", a.label()).expect("write to String cannot fail");
    }
    if let Some(r) = rank {
        write!(s, ",\"rank\":{r}").expect("write to String cannot fail");
    }
    if let Some((from, to)) = shrink {
        write!(s, ",\"from\":{from},\"to\":{to}").expect("write to String cannot fail");
    }
    s.push('}');
}

/// Serialises per-rank event streams (plus each rank's overlap summary) as
/// a single JSON document — the timeline interchange format consumed by
/// `fft-bench`'s `timeline` binary and external plotting scripts.
pub fn trace_to_json(per_rank: &[Vec<TraceEvent>]) -> String {
    let mut s = String::from("{\"ranks\":[");
    for (rank, events) in per_rank.iter().enumerate() {
        if rank > 0 {
            s.push(',');
        }
        write!(s, "{{\"rank\":{rank},\"summary\":").expect("write to String cannot fail");
        s.push_str(&overlap_summary(events).to_json());
        s.push_str(",\"events\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_event_json(&mut s, ev);
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: f64, end: f64, kind: EventKind) -> TraceEvent {
        TraceEvent { start, end, kind }
    }

    #[test]
    fn noop_recorder_is_disabled() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.record(ev(0.0, 1.0, EventKind::Fftz)); // must not panic
    }

    #[test]
    fn mem_recorder_collects_in_order() {
        let mut r = MemRecorder::default();
        assert!(r.enabled());
        r.record(ev(0.0, 1.0, EventKind::Fftz));
        r.record(ev(1.0, 2.0, EventKind::Transpose));
        let events = r.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind, EventKind::Transpose);
        assert!(r.events.is_empty());
    }

    #[test]
    fn derive_maps_each_kind_to_its_category() {
        let events = vec![
            ev(0.0, 1.0, EventKind::Fftz),
            ev(1.0, 1.5, EventKind::Transpose),
            ev(
                1.5,
                2.0,
                EventKind::Ffty {
                    tile: 0,
                    subtile: 0,
                },
            ),
            ev(
                2.0,
                2.25,
                EventKind::Pack {
                    tile: 0,
                    subtile: 0,
                },
            ),
            ev(2.25, 2.3, EventKind::PostA2a { tile: 0, bytes: 64 }),
            ev(
                2.3,
                2.31,
                EventKind::Test {
                    tile: 0,
                    completed: false,
                },
            ),
            ev(2.31, 2.5, EventKind::Wait { tile: 0 }),
            ev(
                2.5,
                2.75,
                EventKind::Unpack {
                    tile: 0,
                    subtile: 0,
                },
            ),
            ev(
                2.75,
                3.0,
                EventKind::Fftx {
                    tile: 0,
                    subtile: 0,
                },
            ),
        ];
        let s = derive_step_times(&events);
        assert!((s.fftz - 1.0).abs() < 1e-12);
        assert!((s.transpose - 0.5).abs() < 1e-12);
        assert!((s.ffty - 0.5).abs() < 1e-12);
        assert!((s.pack - 0.25).abs() < 1e-12);
        assert!((s.ialltoall - 0.05).abs() < 1e-12);
        assert!((s.test - 0.01).abs() < 1e-12);
        assert!((s.wait - 0.19).abs() < 1e-12);
        assert!((s.unpack - 0.25).abs() < 1e-12);
        assert!((s.fftx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn derive_subtracts_polls_nested_in_compute() {
        // Simulated-backend shape: a 1 s FFTy span with two 0.1 s polls
        // charged inside it. Pure FFTy compute is 0.8 s.
        let events = vec![
            ev(
                0.0,
                1.0,
                EventKind::Ffty {
                    tile: 0,
                    subtile: 0,
                },
            ),
            ev(
                0.3,
                0.4,
                EventKind::Test {
                    tile: 0,
                    completed: false,
                },
            ),
            ev(
                0.6,
                0.7,
                EventKind::Test {
                    tile: 0,
                    completed: true,
                },
            ),
        ];
        let s = derive_step_times(&events);
        assert!((s.ffty - 0.8).abs() < 1e-12, "ffty={}", s.ffty);
        assert!((s.test - 0.2).abs() < 1e-12);
    }

    #[test]
    fn overlap_summary_measures_coverage() {
        // Tile 0 in flight over [1.0, 3.0]; the FFTy span on the next tile
        // covers [1.1, 2.0] of it (the Pack span ends as the post begins and
        // contributes nothing).
        let events = vec![
            ev(
                0.0,
                1.0,
                EventKind::Pack {
                    tile: 0,
                    subtile: 0,
                },
            ),
            ev(
                1.0,
                1.1,
                EventKind::PostA2a {
                    tile: 0,
                    bytes: 128,
                },
            ),
            ev(
                1.1,
                2.0,
                EventKind::Ffty {
                    tile: 1,
                    subtile: 0,
                },
            ),
            ev(
                2.0,
                2.01,
                EventKind::Test {
                    tile: 0,
                    completed: false,
                },
            ),
            ev(2.5, 3.0, EventKind::Wait { tile: 0 }),
        ];
        let s = overlap_summary(&events);
        assert!((s.inflight - 2.0).abs() < 1e-12);
        assert!((s.covered - 0.9).abs() < 1e-12, "covered={}", s.covered);
        assert!((s.coverage - 0.45).abs() < 1e-12);
        assert!((s.wait_stall - 0.5).abs() < 1e-12);
        assert_eq!(s.tests, 1);
        assert_eq!(s.tests_completed, 0);
        assert_eq!(s.tiles, 1);
    }

    #[test]
    fn interval_union_merges_overlaps() {
        let merged = merge_intervals(vec![(2.0, 3.0), (0.0, 1.5), (1.0, 2.5), (5.0, 5.0)]);
        assert_eq!(merged, vec![(0.0, 3.0)]);
        assert!((intersection_len(&merged, &[(2.5, 4.0)]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degrade_markers_carry_their_action_without_polluting_the_breakdown() {
        let events = vec![
            ev(0.0, 1.0, EventKind::Fftz),
            ev(
                1.0,
                1.0,
                EventKind::Degrade {
                    tile: 2,
                    action: DegradeAction::ShrinkWindow,
                },
            ),
        ];
        let s = derive_step_times(&events);
        assert!((s.total() - 1.0).abs() < 1e-12, "markers add no time");
        assert_eq!(events[1].kind.tile(), Some(2));
        assert!(!events[1].kind.is_compute());
        let json = trace_to_json(&[events]);
        assert!(json.contains("\"kind\":\"Degrade\""));
        assert!(json.contains("\"action\":\"shrink-window\""));
    }

    #[test]
    fn recovery_markers_serialise_and_stay_out_of_the_breakdown() {
        let events = vec![
            ev(0.0, 1.0, EventKind::Fftz),
            ev(1.0, 1.0, EventKind::RankLost { rank: 3 }),
            ev(1.0, 1.0, EventKind::Shrink { from: 4, to: 3 }),
        ];
        let s = derive_step_times(&events);
        assert!((s.total() - 1.0).abs() < 1e-12, "markers add no time");
        assert_eq!(events[1].kind.tile(), None);
        assert!(!events[1].kind.is_compute() && !events[2].kind.is_compute());
        let json = trace_to_json(&[events]);
        assert!(json.contains("\"kind\":\"RankLost\"") && json.contains("\"rank\":3"));
        assert!(json.contains("\"kind\":\"Shrink\""));
        assert!(json.contains("\"from\":4,\"to\":3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn corrupt_markers_carry_their_tile_without_polluting_the_breakdown() {
        let events = vec![
            ev(0.0, 1.0, EventKind::Fftz),
            ev(1.0, 1.0, EventKind::Corrupt { tile: 4 }),
            ev(
                1.0,
                1.0,
                EventKind::Degrade {
                    tile: 4,
                    action: DegradeAction::Retransmit,
                },
            ),
        ];
        let s = derive_step_times(&events);
        assert!((s.total() - 1.0).abs() < 1e-12, "markers add no time");
        assert_eq!(events[1].kind.tile(), Some(4));
        assert!(!events[1].kind.is_compute());
        let json = trace_to_json(&[events]);
        assert!(json.contains("\"kind\":\"Corrupt\"") && json.contains("\"tile\":4"));
        assert!(json.contains("\"action\":\"retransmit\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_round_trips_the_schema_fields() {
        let per_rank = vec![vec![
            ev(0.0, 1.0, EventKind::Fftz),
            ev(
                1.0,
                1.5,
                EventKind::PostA2a {
                    tile: 2,
                    bytes: 4096,
                },
            ),
            ev(
                1.5,
                1.6,
                EventKind::Test {
                    tile: 2,
                    completed: true,
                },
            ),
            ev(1.6, 1.7, EventKind::Wait { tile: 2 }),
        ]];
        let json = trace_to_json(&per_rank);
        assert!(json.starts_with("{\"ranks\":[{\"rank\":0,"));
        // Kinds serialise under their StepTimes category label.
        assert!(json.contains("\"kind\":\"Ialltoall\""));
        assert!(json.contains("\"bytes\":4096"));
        assert!(json.contains("\"completed\":true"));
        assert!(json.contains("\"summary\":{\"inflight_s\":"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
