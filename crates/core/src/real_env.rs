//! Real execution backend: the distributed 3-D FFT running on actual data
//! over the [`mpisim`] runtime, with [`cfft`] kernels.
//!
//! This backend exists to prove the *algorithm* correct — every variant
//! (NEW, NEW-0, TH, FFTW-style) must reproduce the serial reference
//! transform bit-for-bit (up to floating-point tolerance) for any problem
//! shape, divisible or not. The performance story is told by the simulated
//! backend; here the timings are real wall-clock and only meaningful for
//! laptop-scale smoke benchmarks.

use crate::breakdown::{RunStats, StepTimes};
use crate::decomp::Decomp;
use crate::error::{Error, IntegrityStage};
use crate::params::{ParamError, ProblemSpec, TuningParams};
use crate::pipeline::{try_run_new, try_run_th, OverlapEnv, Recovery, Resilience};
use crate::trace::{DegradeAction, EventKind, NoopRecorder, Recorder, TraceEvent};
use crate::xplan::{ExchangeGeometry, TileExchange, TransformPlanCache};
use cfft::batch::{
    execute_batch_threaded, execute_lines_threaded, for_each_part_threaded, for_each_row_threaded,
    BatchLayout,
};
use cfft::planner::{Plan1d, Rigor};
use cfft::transpose::{permute3_threaded, xzy_fast_threaded, Dims3, XYZ_TO_ZXY};
use cfft::{Complex64, Direction, PlanCache};
use faultplan::{checksum, flip_seeded_bit};
use mpisim::{CollError, Comm, IAlltoall, PersistentAlltoall};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pins a backend fault to the tile whose exchange it hit. Shared with the
/// pencil backend, whose stage-2 tiles are numbered after stage 1's.
pub(crate) fn coll_to_error(tile: usize, e: CollError) -> Error {
    match e {
        CollError::Stalled { round, peer } => Error::Stalled { tile, round, peer },
        CollError::Dropped { round, peer } => Error::Dropped { tile, round, peer },
        CollError::RankFailed(rank) => Error::RankFailed { tile, rank },
        CollError::Revoked => Error::Revoked { tile },
        CollError::Corrupt { .. } => Error::IntegrityFailed {
            tile,
            stage: IntegrityStage::Wire,
        },
    }
}

/// Which algorithm variant to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The paper's NEW: full ten-parameter overlap pipeline (use
    /// [`TuningParams::without_overlap`] for NEW-0).
    New,
    /// Hoefler et al.'s TH: overlap restricted to FFTy+Pack, no loop
    /// tiling, naive transpose.
    Th,
    /// FFTW-style baseline: one blocking all-to-all over the whole slab,
    /// no tiles, no overlap.
    Fftw,
}

/// How the Transpose step is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransposeStyle {
    /// §3.5 fast path (`x-z-y`), legal only when `Nx = Ny`.
    Fast,
    /// Cache-blocked generic `z-x-y` (the "FFTW guru" quality path).
    Generic,
    /// Unblocked triple loop — models TH's non-optimized rearrangement.
    Naive,
}

/// Output memory layout of the distributed transform (y-slab local array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutLayout {
    /// `(z, y_local, x)` with x contiguous — the standard path's result.
    Zyx,
    /// `(y_local, z, x)` with x contiguous — the §3.5 fast path's result.
    Yzx,
}

/// Result of a distributed execution on one rank.
pub struct RunOutput {
    /// This rank's y-slab of the transformed array.
    pub data: Vec<Complex64>,
    /// Layout of `data`.
    pub layout: OutLayout,
    /// Timing statistics.
    pub stats: RunStats,
    /// What the degradation ladder had to do (empty for a clean run, and
    /// always empty when the watchdog is disabled).
    pub recovery: Recovery,
    /// Planning time this call actually incurred. Exactly zero when every
    /// plan came from the process-wide [`PlanCache`] — i.e. for any repeat
    /// of a geometry this process has transformed before.
    pub planning: Duration,
    /// Exchange schedule setups this call performed: one per ad-hoc
    /// all-to-all post, one per persistent-plan init. Through an
    /// [`FftSession`] the per-tile plans are set up lazily on the first
    /// execution, so every execution after the first reports exactly zero —
    /// the setup-once / execute-many steady state.
    pub exchange_setups: u64,
}

/// Request handle of the real backend: either an ad-hoc one-shot exchange,
/// or one execution of a session's persistent per-tile plan (the plan
/// itself lives in the environment, so the handle is just the tile number).
pub enum RealReq {
    /// One-shot `ialltoallv` request (the non-session path).
    AdHoc(IAlltoall<Complex64>),
    /// In-flight execution of the persistent plan for this tile.
    Persistent(usize),
    /// No exchange was posted: the staged payload failed an integrity
    /// check at the named stage. The driver's wait surfaces the failure;
    /// for the Pack stage it can heal by [`OverlapEnv::retransmit`],
    /// because no peer ever saw (or sequenced) the withheld exchange.
    Poisoned(IntegrityStage),
}

/// Per-tile persistent exchange plans owned by an [`FftSession`], borrowed
/// by the environment for the duration of one execution.
type TilePlans = Vec<Option<PersistentAlltoall<Complex64>>>;

/// Distributes polls evenly across a loop of `total_units` work units.
struct PollSchedule {
    total_units: u64,
    polls: u64,
    done: u64,
    issued: u64,
}

impl PollSchedule {
    fn new(total_units: usize, polls: u32) -> Self {
        PollSchedule {
            total_units: total_units.max(1) as u64,
            polls: polls as u64,
            done: 0,
            issued: 0,
        }
    }

    /// Marks one unit done; returns how many polls are now due.
    fn after_unit(&mut self) -> u64 {
        self.done += 1;
        let target = self.polls * self.done / self.total_units;
        let due = target - self.issued;
        self.issued = target;
        due
    }
}

/// Bounded recycle pool for all-to-all receive buffers.
///
/// Retains at most `max_buffers` buffers (the windowed pipeline never has
/// more than `W + 1` tiles between post and unpack), and shrinks a returned
/// buffer whose capacity exceeds `max_len` — e.g. one that served a larger
/// earlier tile — before retaining it, so mixed tile sizes cannot pin
/// peak-tile memory for the rest of the run.
#[derive(Debug, Default)]
pub struct BufferPool {
    max_buffers: usize,
    max_len: usize,
    bufs: Vec<Vec<Complex64>>,
}

impl BufferPool {
    /// A pool retaining at most `max_buffers` buffers of at most `max_len`
    /// elements of capacity each.
    pub fn new(max_buffers: usize, max_len: usize) -> Self {
        BufferPool {
            max_buffers,
            max_len,
            bufs: Vec::new(),
        }
    }

    /// Hands out a zero-filled buffer of exactly `len` elements, recycling
    /// a retained one when available.
    pub fn take(&mut self, len: usize) -> Vec<Complex64> {
        let mut buf = self.bufs.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, Complex64::ZERO);
        buf
    }

    /// Returns a buffer to the pool; dropped if the pool is full, shrunk
    /// first if its capacity exceeds the pool's per-buffer cap.
    pub fn put(&mut self, mut buf: Vec<Complex64>) {
        if self.bufs.len() >= self.max_buffers {
            return;
        }
        if buf.capacity() > self.max_len {
            buf.truncate(self.max_len);
            buf.shrink_to(self.max_len);
        }
        self.bufs.push(buf);
    }

    /// Number of buffers currently retained.
    pub fn retained(&self) -> usize {
        self.bufs.len()
    }

    /// Total elements of capacity currently retained.
    pub fn retained_capacity(&self) -> usize {
        self.bufs.iter().map(|b| b.capacity()).sum()
    }
}

struct RealEnv<'a> {
    comm: &'a Comm,
    spec: ProblemSpec,
    params: TuningParams,
    decomp: Decomp,
    /// Per-tile exchange geometry from the process-wide
    /// [`TransformPlanCache`] — never recomputed per call.
    geom: Arc<ExchangeGeometry>,
    /// Session mode: per-tile persistent plans, inited lazily on each
    /// tile's first execution and reused for every execution after.
    /// `None` posts ad-hoc one-shot exchanges (the classic path).
    plans: Option<&'a mut TilePlans>,
    /// Exchange schedule setups performed during this run (see
    /// [`RunOutput::exchange_setups`]).
    setups: u64,
    nxl: usize,
    nyl: usize,
    transpose_style: TransposeStyle,
    layout: OutLayout,
    plan_z: Arc<Plan1d>,
    plan_y: Arc<Plan1d>,
    plan_x: Arc<Plan1d>,
    plan_scratch: Vec<Complex64>,
    /// Input slab (x-y-z), consumed by FFTz+Transpose.
    input: Vec<Complex64>,
    /// Transposed slab: z-x-y (standard) or x-z-y (fast).
    zxy: Vec<Complex64>,
    /// Output slab: z-y-x or y-z-x.
    out: Vec<Complex64>,
    /// Per-destination-block staging for the current tile's pack.
    send: Vec<Complex64>,
    /// Elements the largest tile's pack can need; `send` never exceeds it.
    send_cap: usize,
    /// Resident hash over the packed staging buffer, set by the pack and
    /// re-verified at post time — memory SDC on the pack→post boundary is
    /// caught before the bytes reach any peer.
    send_hash: u64,
    /// ABFT checksum line: Σ over the sub-tile's batch, captured before the
    /// in-place transform and transformed alongside it (DESIGN.md §16).
    abft_line: Vec<Complex64>,
    /// Post-transform batch sum, compared against the transformed
    /// [`Self::abft_line`].
    abft_post: Vec<Complex64>,
    /// Recycled receive buffers, bounded to the pipeline's working set.
    recv_pool: BufferPool,
    /// Receive data of the most recently waited tile, awaiting unpack.
    pending_recv: Option<Vec<Complex64>>,
    /// When `pending_recv` was taken from a persistent plan, the tile whose
    /// plan must get the buffer back after unpack (pool-recycled otherwise).
    pending_plan: Option<usize>,
    /// Watchdog timeout for waits; `None` blocks forever (legacy).
    stall_timeout: Option<Duration>,
    /// `F*` multiplier applied by the ladder's boost-polls rung.
    poll_boost: u32,
    /// The boost is applied at most once per run.
    boosted: bool,
    steps: StepTimes,
    tests: u64,
    started: Instant,
    recorder: &'a mut dyn Recorder,
}

impl<'a> RealEnv<'a> {
    fn tile_range(&self, tile: usize) -> (usize, usize) {
        let z0 = tile * self.params.t;
        let z1 = (z0 + self.params.t).min(self.spec.nz);
        (z0, z1)
    }

    /// Routes a consumed receive buffer back to its owner: the waited
    /// tile's persistent plan (session mode) or the recycle pool.
    fn finish_recv(&mut self, recv: Vec<Complex64>) {
        match self.pending_plan.take() {
            Some(tile) => {
                let plan = self
                    .plans
                    .as_mut()
                    .and_then(|p| p[tile].as_mut())
                    .expect("plan-owned recv buffer without its plan");
                plan.restore_recv(recv);
            }
            None => self.recv_pool.put(recv),
        }
    }

    /// One `MPI_Test` on `req`, whichever exchange mode it belongs to.
    fn try_test(&mut self, req: &mut RealReq) -> Result<bool, CollError> {
        let comm = self.comm;
        match req {
            RealReq::AdHoc(r) => r.try_test(comm),
            RealReq::Persistent(tile) => self
                .plans
                .as_mut()
                .and_then(|p| p[*tile].as_mut())
                .expect("in-flight persistent execution without its plan")
                .try_test(comm),
            // A withheld exchange never completes; the failure surfaces at
            // wait time, where the driver can heal it.
            RealReq::Poisoned(_) => Ok(false),
        }
    }

    fn poll_inflight(
        &mut self,
        inflight: &mut [(usize, RealReq)],
        times: u64,
    ) -> Result<(), Error> {
        if times == 0 || inflight.is_empty() {
            return Ok(());
        }
        if self.recorder.enabled() {
            // Traced path: time and record each poll individually so the
            // event stream shows which tile each `MPI_Test` touched and
            // whether it observed completion.
            for _ in 0..times {
                for (tile, req) in inflight.iter_mut() {
                    let t0 = Instant::now();
                    let result = self.try_test(req);
                    let t1 = Instant::now();
                    self.tests += 1;
                    self.steps.test += (t1 - t0).as_secs_f64();
                    let tile = *tile;
                    let completed = result.map_err(|e| coll_to_error(tile, e))?;
                    self.record_span(t0, t1, EventKind::Test { tile, completed });
                }
            }
        } else {
            let t0 = Instant::now();
            let mut failed = None;
            'polls: for _ in 0..times {
                for (tile, req) in inflight.iter_mut() {
                    self.tests += 1;
                    if let Err(e) = self.try_test(req) {
                        failed = Some(coll_to_error(*tile, e));
                        break 'polls;
                    }
                }
            }
            self.steps.test += t0.elapsed().as_secs_f64();
            if let Some(e) = failed {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Records one traced span; no-op (and no timestamp math) when tracing
    /// is disabled.
    fn record_span(&mut self, t0: Instant, t1: Instant, kind: EventKind) {
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent {
                start: t0.duration_since(self.started).as_secs_f64(),
                end: t1.duration_since(self.started).as_secs_f64(),
                kind,
            });
        }
    }

    /// Flat index into the transposed slab for `(z, xl, y)`.
    #[inline]
    fn zxy_idx(&self, z: usize, xl: usize, y: usize) -> usize {
        match self.transpose_style {
            TransposeStyle::Fast => (xl * self.spec.nz + z) * self.spec.ny + y,
            _ => (z * self.nxl + xl) * self.spec.ny + y,
        }
    }

    /// Flat index into the output slab for `(z, yl, x)`.
    #[inline]
    fn out_idx(&self, z: usize, yl: usize, x: usize) -> usize {
        match self.layout {
            OutLayout::Zyx => (z * self.nyl + yl) * self.spec.nx + x,
            OutLayout::Yzx => (yl * self.spec.nz + z) * self.spec.nx + x,
        }
    }

    /// Posts `tile`'s exchange from the current staging buffer. Shared by
    /// the normal post path and [`OverlapEnv::retransmit`]; deliberately
    /// free of the crash/bit-flip injection points so a retransmitted
    /// exchange is never re-poisoned by the same planned fault.
    fn post_exchange(&mut self, tile: usize, xg: &TileExchange) -> RealReq {
        let comm = self.comm;
        let t0 = Instant::now();
        let req = match self.plans.as_mut() {
            Some(plans) => {
                // Session mode: init the tile's persistent plan lazily on
                // its first execution; every later execution just starts it
                // — zero per-execution negotiation.
                if plans[tile].is_none() {
                    let recv = vec![Complex64::ZERO; xg.total_recv];
                    plans[tile] = Some(comm.alltoallv_init(&xg.send_counts, &xg.recv_counts, recv));
                    self.setups += 1;
                }
                plans[tile]
                    .as_mut()
                    .expect("just initialised")
                    .start(comm, &self.send[..xg.total_send]);
                RealReq::Persistent(tile)
            }
            None => {
                let recv = self.recv_pool.take(xg.total_recv);
                self.setups += 1;
                RealReq::AdHoc(comm.ialltoallv(
                    &self.send[..xg.total_send],
                    &xg.send_counts,
                    &xg.recv_counts,
                    recv,
                ))
            }
        };
        let t1 = Instant::now();
        self.steps.ialltoall += (t1 - t0).as_secs_f64();
        let bytes = (xg.total_send * std::mem::size_of::<Complex64>()) as u64;
        self.record_span(t0, t1, EventKind::PostA2a { tile, bytes });
        req
    }
}

/// Accumulates the batch sum of `starts.len()` rows of `data`, each `n`
/// elements long, into `dst` (cleared first) — the ABFT checksum line.
fn abft_sum_rows(dst: &mut Vec<Complex64>, data: &[Complex64], starts: &[usize], n: usize) {
    dst.clear();
    dst.resize(n, Complex64::ZERO);
    for &s in starts {
        for (acc, v) in dst.iter_mut().zip(&data[s..s + n]) {
            *acc += *v;
        }
    }
}

/// Relative ABFT tolerance. FFT roundoff on the checksum comparison is
/// ~1e-13 of the batch scale on realistic sizes, four orders below this
/// threshold — while a flipped sign, exponent, or high-mantissa bit lands
/// many orders above it. (Flips of the lowest mantissa bits are below any
/// tolerance an f64 check can hold and are numerically inconsequential.)
const ABFT_TOL: f64 = 1e-9;

/// Whether the transformed checksum line equals the post-transform batch
/// sum within tolerance — the linearity identity FFT(Σ) = Σ FFT(·).
fn abft_agrees(sum_fft: &[Complex64], post_sum: &[Complex64], batch: usize) -> bool {
    let mut scale = 1.0f64;
    let mut worst = 0.0f64;
    for (a, b) in sum_fft.iter().zip(post_sum) {
        scale = scale.max(a.abs()).max(b.abs());
        worst = worst.max((*a - *b).abs());
    }
    worst <= ABFT_TOL * scale * (batch.max(sum_fft.len()).max(1)) as f64
}

impl<'a> OverlapEnv for RealEnv<'a> {
    type Req = RealReq;

    fn num_tiles(&self) -> usize {
        self.params.tiles(&self.spec)
    }

    fn window(&self) -> usize {
        self.params.w
    }

    fn fftz_transpose(&mut self) {
        let (nx_l, ny, nz) = (self.nxl, self.spec.ny, self.spec.nz);
        let threads = self.params.threads;
        // FFTz: z lines are contiguous in the x-y-z input.
        let t0 = Instant::now();
        if threads > 1 {
            execute_batch_threaded(
                &self.plan_z,
                &mut self.input,
                BatchLayout::contiguous(nz, nx_l * ny),
                threads,
            );
        } else {
            for line in 0..nx_l * ny {
                let s = line * nz;
                self.plan_z
                    .execute(&mut self.input[s..s + nz], &mut self.plan_scratch);
            }
        }
        let t1 = Instant::now();
        self.steps.fftz += (t1 - t0).as_secs_f64();
        self.record_span(t0, t1, EventKind::Fftz);

        // Transpose into the tile-friendly layout. The `_threaded` kernels
        // fall back to the sequential blocked code at `threads = 1`.
        let t0 = Instant::now();
        let sd = Dims3::new(nx_l, ny, nz);
        match self.transpose_style {
            TransposeStyle::Fast => xzy_fast_threaded(&self.input, &mut self.zxy, sd, threads),
            TransposeStyle::Generic => {
                permute3_threaded(&self.input, &mut self.zxy, sd, XYZ_TO_ZXY, threads)
            }
            TransposeStyle::Naive => {
                // Deliberately unblocked: models a straightforward loop nest.
                for x in 0..nx_l {
                    for y in 0..ny {
                        for z in 0..nz {
                            self.zxy[(z * nx_l + x) * ny + y] = self.input[(x * ny + y) * nz + z];
                        }
                    }
                }
            }
        }
        let t1 = Instant::now();
        self.steps.transpose += (t1 - t0).as_secs_f64();
        self.record_span(t0, t1, EventKind::Transpose);
    }

    fn ffty_pack(&mut self, tile: usize, inflight: &mut [(usize, Self::Req)]) -> Result<(), Error> {
        let (z0, z1) = self.tile_range(tile);
        let tz = z1 - z0;
        let ny = self.spec.ny;
        let nxl = self.nxl;
        let (px, pz) = (
            self.params.px.min(nxl.max(1)),
            self.params.pz.min(tz.max(1)),
        );
        if nxl == 0 || tz == 0 {
            // Nothing staged: the resident hash must cover the empty
            // payload this tile will post.
            self.send_hash = checksum::<Complex64>(&[]);
            return Ok(());
        }

        // Sub-tile grid (Figure 4, left): Px × Ny × Pz blocks.
        let xblocks = nxl.div_ceil(px);
        let zblocks = tz.div_ceil(pz);
        let subtiles = xblocks * zblocks;
        let mut sched_y = PollSchedule::new(subtiles, self.params.fy);
        let mut sched_p = PollSchedule::new(subtiles, self.params.fp);

        let xg = self.geom.tiles[tile].clone();
        let send_displs = &xg.send_displs;
        let total_send = xg.total_send;
        if self.send.len() < total_send {
            self.send.resize(total_send, Complex64::ZERO);
        }
        if self.send.capacity() > self.send_cap {
            // Never retain more staging than the largest tile needs.
            self.send.truncate(self.send_cap);
            self.send.shrink_to(self.send_cap);
        }

        for zb in 0..zblocks {
            let zs = z0 + zb * pz;
            let ze = (zs + pz).min(z1);
            for xb in 0..xblocks {
                let xs = xb * px;
                let xe = (xs + px).min(nxl);

                // Row starts of the sub-tile's y lines (disjoint whichever
                // layout `zxy_idx` uses), shared by the transform paths and
                // the ABFT sums below.
                let mut row_starts: Vec<usize> = Vec::with_capacity((ze - zs) * (xe - xs));
                for z in zs..ze {
                    for xl in xs..xe {
                        row_starts.push(self.zxy_idx(z, xl, 0));
                    }
                }

                // ABFT (DESIGN.md §16): capture the batch checksum line
                // Σ(lines) before the in-place FFTy. Linearity demands
                // FFT(Σ lines) = Σ FFT(lines) within roundoff, so a compute
                // or memory fault inside the transform window breaks the
                // equality far beyond tolerance.
                let mut line = std::mem::take(&mut self.abft_line);
                abft_sum_rows(&mut line, &self.zxy, &row_starts, ny);

                // FFTy on every y line of the sub-tile.
                let t0 = Instant::now();
                if self.params.threads > 1 {
                    // Rows are only sorted for one of the layouts — sort for
                    // the splitter.
                    let mut starts = row_starts.clone();
                    starts.sort_unstable();
                    execute_lines_threaded(
                        &self.plan_y,
                        &mut self.zxy,
                        &starts,
                        self.params.threads,
                    );
                } else {
                    for &s in &row_starts {
                        self.plan_y
                            .execute(&mut self.zxy[s..s + ny], &mut self.plan_scratch);
                    }
                }
                let t1 = Instant::now();
                self.steps.ffty += (t1 - t0).as_secs_f64();
                self.record_span(
                    t0,
                    t1,
                    EventKind::Ffty {
                        tile,
                        subtile: zb * xblocks + xb,
                    },
                );

                // Transform the checksum line and compare with the batch sum
                // of the transformed lines.
                self.plan_y.execute(&mut line, &mut self.plan_scratch);
                let mut post = std::mem::take(&mut self.abft_post);
                abft_sum_rows(&mut post, &self.zxy, &row_starts, ny);
                let agrees = abft_agrees(&line, &post, row_starts.len());
                self.abft_line = line;
                self.abft_post = post;
                if !agrees {
                    let now = Instant::now();
                    self.record_span(now, now, EventKind::Corrupt { tile });
                    return Err(Error::IntegrityFailed {
                        tile,
                        stage: IntegrityStage::Ffty,
                    });
                }

                let due = sched_y.after_unit();
                self.poll_inflight(inflight, due)?;

                // Pack the sub-tile into per-destination blocks, each laid
                // out (z_local, x_local, y_local).
                let t0 = Instant::now();
                if self.params.threads > 1 {
                    // Parallel over destination ranks: each worker owns whole
                    // per-destination send blocks (disjoint `&mut`) and reads
                    // the shared transposed slab.
                    let mut bounds = send_displs.to_vec();
                    bounds.push(total_send);
                    let zxy = &self.zxy;
                    let decomp = &self.decomp;
                    let style = self.transpose_style;
                    let (snz, sny, snxl) = (self.spec.nz, ny, nxl);
                    let zxy_row = move |z: usize, xl: usize| match style {
                        TransposeStyle::Fast => (xl * snz + z) * sny,
                        _ => (z * snxl + xl) * sny,
                    };
                    for_each_part_threaded(
                        &mut self.send[..total_send],
                        &bounds,
                        self.params.threads,
                        |q, part| {
                            let nyl_q = decomp.y.count(q);
                            let yoff = decomp.y.offset(q);
                            for z in zs..ze {
                                let zl = z - z0;
                                for xl in xs..xe {
                                    let src = zxy_row(z, xl) + yoff;
                                    let dst = (zl * nxl + xl) * nyl_q;
                                    part[dst..dst + nyl_q].copy_from_slice(&zxy[src..src + nyl_q]);
                                }
                            }
                        },
                    );
                } else {
                    for z in zs..ze {
                        let zl = z - z0;
                        for xl in xs..xe {
                            let row = self.zxy_idx(z, xl, 0);
                            let in_block_row = zl * nxl + xl;
                            for (q, &q_displ) in send_displs.iter().enumerate() {
                                let nyl_q = self.decomp.y.count(q);
                                let yoff = self.decomp.y.offset(q);
                                let dst = q_displ + in_block_row * nyl_q;
                                let src = row + yoff;
                                // Contiguous y-run copy.
                                self.send[dst..dst + nyl_q]
                                    .copy_from_slice(&self.zxy[src..src + nyl_q]);
                            }
                        }
                    }
                }
                let t1 = Instant::now();
                self.steps.pack += (t1 - t0).as_secs_f64();
                self.record_span(
                    t0,
                    t1,
                    EventKind::Pack {
                        tile,
                        subtile: zb * xblocks + xb,
                    },
                );
                let due = sched_p.after_unit();
                self.poll_inflight(inflight, due)?;
            }
        }
        // Seal the staged payload: post time re-verifies this hash, so any
        // memory corruption on the pack→post boundary is caught before the
        // bytes reach a peer.
        self.send_hash = checksum(&self.send[..total_send]);
        Ok(())
    }

    fn post_a2a(&mut self, tile: usize) -> Self::Req {
        // Fault-plan crash injection: a rank seeded to die "at tile `k`"
        // dies here, on the boundary between pack and exchange — its peers
        // may already hold this tile's pre-crash sends (and must still be
        // able to complete tiles that need nothing more from us).
        self.comm.crash_point(tile);
        let xg = self.geom.tiles[tile].clone();
        // Fault-plan memory-SDC injection: flip one seeded bit of the
        // packed staging buffer on the same pack→post boundary.
        if let Some(site) = self.comm.bitflip_point(tile) {
            flip_seeded_bit(&mut self.send[..xg.total_send], site);
        }
        // Resident hash check: the staged payload must still be the bytes
        // the pack sealed, or the exchange is withheld — the poisoned
        // request surfaces at wait time and the driver re-packs from the
        // pristine transformed slab (no peer sequenced anything).
        if checksum(&self.send[..xg.total_send]) != self.send_hash {
            let now = Instant::now();
            self.record_span(now, now, EventKind::Corrupt { tile });
            return RealReq::Poisoned(IntegrityStage::Pack);
        }
        self.post_exchange(tile, &xg)
    }

    fn wait(&mut self, tile: usize, req: Self::Req) -> Result<(), (Self::Req, Error)> {
        if let RealReq::Poisoned(stage) = req {
            // Nothing was posted: surface the integrity failure so the
            // driver can heal (Pack stage retransmits) or abort.
            return Err((
                RealReq::Poisoned(stage),
                Error::IntegrityFailed { tile, stage },
            ));
        }
        let comm = self.comm;
        let t0 = Instant::now();
        // Resolve the exchange to a completed receive buffer (or a
        // retryable error); the timing and trace bookkeeping is shared.
        type WaitOutcome<R> = Result<(Vec<Complex64>, Option<usize>), (R, CollError)>;
        let outcome: WaitOutcome<Self::Req> = match req {
            RealReq::AdHoc(mut r) => match self.stall_timeout {
                None => {
                    // Legacy blocking wait: spins (with parking) until
                    // complete, panics on an unrecoverable collective fault.
                    Ok((r.wait(comm), None))
                }
                Some(timeout) => match r.wait_timeout(comm, timeout) {
                    Ok(()) => Ok((r.take_recv(), None)),
                    // Hand the live request back: the driver may retry it
                    // after a degradation step, or cancel it.
                    Err(e) => Err((RealReq::AdHoc(r), e)),
                },
            },
            RealReq::Persistent(pt) => {
                let plan = self
                    .plans
                    .as_mut()
                    .and_then(|p| p[pt].as_mut())
                    .expect("in-flight persistent execution without its plan");
                match self.stall_timeout {
                    None => {
                        plan.wait(comm);
                        Ok((plan.take_recv(), Some(pt)))
                    }
                    Some(timeout) => match plan.wait_timeout(comm, timeout) {
                        Ok(()) => Ok((plan.take_recv(), Some(pt))),
                        // The execution stays alive inside the plan; the
                        // handle going back to the driver is just the tile.
                        Err(e) => Err((RealReq::Persistent(pt), e)),
                    },
                }
            }
            RealReq::Poisoned(_) => unreachable!("handled above"),
        };
        let t1 = Instant::now();
        self.steps.wait += (t1 - t0).as_secs_f64();
        self.record_span(t0, t1, EventKind::Wait { tile });
        match outcome {
            Ok((recv, from_plan)) => {
                self.pending_recv = Some(recv);
                self.pending_plan = from_plan;
                Ok(())
            }
            Err((req, e)) => {
                let err = coll_to_error(tile, e);
                if matches!(err, Error::IntegrityFailed { .. }) {
                    // Wire corruption past the link-layer retransmit budget:
                    // mark the detection in the timeline.
                    let now = Instant::now();
                    self.record_span(now, now, EventKind::Corrupt { tile });
                }
                Err((req, err))
            }
        }
    }

    fn unpack_fftx(
        &mut self,
        tile: usize,
        inflight: &mut [(usize, Self::Req)],
    ) -> Result<(), Error> {
        let recv = self
            .pending_recv
            .take()
            .ok_or(Error::Internal("unpack without a waited tile"))?;
        let (z0, z1) = self.tile_range(tile);
        let tz = z1 - z0;
        let nx = self.spec.nx;
        let nyl = self.nyl;
        if nyl == 0 || tz == 0 {
            self.finish_recv(recv);
            return Ok(());
        }
        let (uy, uz) = (self.params.uy.min(nyl), self.params.uz.min(tz));

        let xg = self.geom.tiles[tile].clone();
        let recv_displs = &xg.recv_displs;

        // Sub-tile grid (Figure 4, right): Nx × Uy × Uz blocks.
        let yblocks = nyl.div_ceil(uy);
        let zblocks = tz.div_ceil(uz);
        let subtiles = yblocks * zblocks;
        let mut sched_u = PollSchedule::new(subtiles, self.params.fu);
        let mut sched_x = PollSchedule::new(subtiles, self.params.fx);

        for zb in 0..zblocks {
            let zs = z0 + zb * uz;
            let ze = (zs + uz).min(z1);
            for yb in 0..yblocks {
                let ys = yb * uy;
                let ye = (ys + uy).min(nyl);

                // Output rows of this sub-tile, sorted by offset — shared by
                // the parallel Unpack and FFTx paths below. Rows are disjoint
                // length-nx slices whichever `out_idx` layout is active.
                let rows: Vec<(usize, (usize, usize))> = if self.params.threads > 1 {
                    let mut rows: Vec<(usize, (usize, usize))> = (zs..ze)
                        .flat_map(|z| (ys..ye).map(move |yl| (z, yl)))
                        .map(|(z, yl)| (self.out_idx(z, yl, 0), (z, yl)))
                        .collect();
                    rows.sort_unstable_by_key(|r| r.0);
                    rows
                } else {
                    Vec::new()
                };

                // Unpack: source block from rank s is (z_local, x_in_s,
                // y_local); destination rows are x-contiguous.
                let t0 = Instant::now();
                if self.params.threads > 1 {
                    let decomp = &self.decomp;
                    let recv_ref = &recv;
                    let displs = &recv_displs;
                    for_each_row_threaded(
                        &mut self.out,
                        nx,
                        &rows,
                        self.params.threads,
                        |row, &(z, yl)| {
                            let zl = z - z0;
                            for (s, &s_displ) in displs.iter().enumerate() {
                                let nxl_s = decomp.x.count(s);
                                let xoff = decomp.x.offset(s);
                                let base = s_displ + (zl * nxl_s) * nyl + yl;
                                for xl in 0..nxl_s {
                                    row[xoff + xl] = recv_ref[base + xl * nyl];
                                }
                            }
                        },
                    );
                } else {
                    for z in zs..ze {
                        let zl = z - z0;
                        for yl in ys..ye {
                            let out_row = self.out_idx(z, yl, 0);
                            for (s, &s_displ) in recv_displs.iter().enumerate() {
                                let nxl_s = self.decomp.x.count(s);
                                let xoff = self.decomp.x.offset(s);
                                let base = s_displ + (zl * nxl_s) * nyl + yl;
                                for xl in 0..nxl_s {
                                    self.out[out_row + xoff + xl] = recv[base + xl * nyl];
                                }
                            }
                        }
                    }
                }
                let t1 = Instant::now();
                self.steps.unpack += (t1 - t0).as_secs_f64();
                self.record_span(
                    t0,
                    t1,
                    EventKind::Unpack {
                        tile,
                        subtile: zb * yblocks + yb,
                    },
                );
                let due = sched_u.after_unit();
                self.poll_inflight(inflight, due)?;

                // ABFT checksum line through FFTx — same linearity identity
                // as the FFTy check in `ffty_pack`.
                let mut fx_rows: Vec<usize> = Vec::with_capacity((ze - zs) * (ye - ys));
                for z in zs..ze {
                    for yl in ys..ye {
                        fx_rows.push(self.out_idx(z, yl, 0));
                    }
                }
                let mut line = std::mem::take(&mut self.abft_line);
                abft_sum_rows(&mut line, &self.out, &fx_rows, nx);

                // FFTx on the unpacked x lines.
                let t0 = Instant::now();
                if self.params.threads > 1 {
                    let starts: Vec<usize> = rows.iter().map(|r| r.0).collect();
                    execute_lines_threaded(
                        &self.plan_x,
                        &mut self.out,
                        &starts,
                        self.params.threads,
                    );
                } else {
                    for &s in &fx_rows {
                        self.plan_x
                            .execute(&mut self.out[s..s + nx], &mut self.plan_scratch);
                    }
                }
                let t1 = Instant::now();
                self.steps.fftx += (t1 - t0).as_secs_f64();
                self.record_span(
                    t0,
                    t1,
                    EventKind::Fftx {
                        tile,
                        subtile: zb * yblocks + yb,
                    },
                );

                self.plan_x.execute(&mut line, &mut self.plan_scratch);
                let mut post = std::mem::take(&mut self.abft_post);
                abft_sum_rows(&mut post, &self.out, &fx_rows, nx);
                let agrees = abft_agrees(&line, &post, fx_rows.len());
                self.abft_line = line;
                self.abft_post = post;
                if !agrees {
                    let now = Instant::now();
                    self.record_span(now, now, EventKind::Corrupt { tile });
                    return Err(Error::IntegrityFailed {
                        tile,
                        stage: IntegrityStage::Fftx,
                    });
                }

                let due = sched_x.after_unit();
                self.poll_inflight(inflight, due)?;
            }
        }
        self.finish_recv(recv);
        Ok(())
    }

    fn escalate_watchdog(&mut self) {
        // Doubling per strike keeps a dead peer's detection time
        // geometrically bounded while giving a straggler-induced stall
        // enough grace to drain (the strike budget alone is too tight once
        // the mailbox parks back off from microseconds instead of a fixed
        // 50 ms slice).
        if let Some(t) = self.stall_timeout.as_mut() {
            *t = t.saturating_mul(2).min(Duration::from_secs(5));
        }
    }

    fn boost_polls(&mut self) {
        if self.boosted {
            return;
        }
        self.boosted = true;
        let b = self.poll_boost.max(1);
        self.params.fy = self.params.fy.saturating_mul(b);
        self.params.fp = self.params.fp.saturating_mul(b);
        self.params.fu = self.params.fu.saturating_mul(b);
        self.params.fx = self.params.fx.saturating_mul(b);
    }

    fn on_degrade(&mut self, tile: usize, action: DegradeAction) {
        let now = Instant::now();
        self.record_span(now, now, EventKind::Degrade { tile, action });
    }

    fn cancel(&mut self, _tile: usize, req: Self::Req) {
        // Reclaim whatever the abandoned exchange staged in this rank's
        // mailbox so nothing leaks past the error path.
        match req {
            RealReq::AdHoc(r) => {
                r.cancel(self.comm);
            }
            RealReq::Persistent(tile) => {
                // Free the whole plan — its in-flight execution is purged
                // with it; a later execution re-inits the tile lazily.
                if let Some(plan) = self.plans.as_mut().and_then(|p| p[tile].take()) {
                    plan.free(self.comm);
                }
            }
            // A poisoned request never staged anything.
            RealReq::Poisoned(_) => {}
        }
    }

    fn retransmit(&mut self, tile: usize) -> Option<Self::Req> {
        // Heal a Pack-stage integrity failure: re-pack the tile from the
        // pristine transformed slab (FFTy was in place; the corruption hit
        // only the staging copy), re-seal the hash, and re-post. Sequential
        // copies — healing is off the hot path. The injection points are
        // deliberately not revisited, so a planned fault fires once.
        let (z0, z1) = self.tile_range(tile);
        let nxl = self.nxl;
        let xg = self.geom.tiles[tile].clone();
        if nxl > 0 && z1 > z0 {
            if self.send.len() < xg.total_send {
                self.send.resize(xg.total_send, Complex64::ZERO);
            }
            for z in z0..z1 {
                let zl = z - z0;
                for xl in 0..nxl {
                    let row = self.zxy_idx(z, xl, 0);
                    let in_block_row = zl * nxl + xl;
                    for (q, &q_displ) in xg.send_displs.iter().enumerate() {
                        let nyl_q = self.decomp.y.count(q);
                        let yoff = self.decomp.y.offset(q);
                        let dst = q_displ + in_block_row * nyl_q;
                        let src = row + yoff;
                        self.send[dst..dst + nyl_q].copy_from_slice(&self.zxy[src..src + nyl_q]);
                    }
                }
            }
        }
        self.send_hash = checksum(&self.send[..xg.total_send]);
        Some(self.post_exchange(tile, &xg))
    }

    fn post_poisoned(&self, req: &Self::Req) -> Option<IntegrityStage> {
        match req {
            RealReq::Poisoned(stage) => Some(*stage),
            _ => None,
        }
    }

    fn sched_point(&mut self) {
        // Give mpisim's virtual scheduler (checked runs) a deterministic
        // release point once per tile; free outside checked runs.
        self.comm.progress_hint();
    }

    fn threads(&self) -> usize {
        self.params.threads
    }
}

/// Executes one distributed 3-D FFT on this rank.
///
/// `input` is this rank's x-slab in `x-y-z` layout (`count_x(rank)·ny·nz`
/// elements). Returns this rank's y-slab of the result plus statistics.
/// Collective: every rank of `comm` must call this with consistent
/// arguments.
pub fn fft3_dist(
    comm: &Comm,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    dir: Direction,
    rigor: Rigor,
    input: &[Complex64],
) -> RunOutput {
    fft3_dist_traced(
        comm,
        spec,
        variant,
        params,
        dir,
        rigor,
        input,
        &mut NoopRecorder,
    )
}

/// [`fft3_dist`] with per-tile event tracing: every phase span, poll and
/// wait on this rank is appended to `recorder` (see [`crate::trace`]).
/// Passing a [`NoopRecorder`] makes this identical to [`fft3_dist`].
///
/// # Panics
/// On infeasible parameters or an unrecoverable pipeline fault; use
/// [`try_fft3_dist_traced`] for the typed error path.
#[allow(clippy::too_many_arguments)]
pub fn fft3_dist_traced(
    comm: &Comm,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    dir: Direction,
    rigor: Rigor,
    input: &[Complex64],
    recorder: &mut dyn Recorder,
) -> RunOutput {
    try_fft3_dist_traced(
        comm,
        spec,
        variant,
        params,
        dir,
        rigor,
        input,
        &Resilience::default(),
        recorder,
    )
    // Display keeps the legacy "infeasible parameters: …" wording that
    // callers of the panicking API match on.
    .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`fft3_dist`]: infeasible parameters come back as
/// [`Error::InfeasibleParams`] instead of a panic, and with a watchdog
/// armed (see [`Resilience::stall_timeout`]) a wedged exchange surfaces as
/// [`Error::Stalled`] instead of spinning forever. Runs with the default
/// [`Resilience`] (watchdog disabled).
pub fn try_fft3_dist(
    comm: &Comm,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    dir: Direction,
    rigor: Rigor,
    input: &[Complex64],
) -> Result<RunOutput, Error> {
    try_fft3_dist_traced(
        comm,
        spec,
        variant,
        params,
        dir,
        rigor,
        input,
        &Resilience::default(),
        &mut NoopRecorder,
    )
}

/// The full-control entry point: tracing plus an explicit [`Resilience`]
/// policy. With `stall_timeout` set, stalled exchanges trip the watchdog
/// and the pipeline climbs the degradation ladder (boost polls → shrink
/// window → blocking fallback) before giving up; what it did is reported
/// in [`RunOutput::recovery`]. On the error path every in-flight exchange
/// is cancelled before returning — no staged messages leak.
#[allow(clippy::too_many_arguments)]
pub fn try_fft3_dist_traced(
    comm: &Comm,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    dir: Direction,
    rigor: Rigor,
    input: &[Complex64],
    resilience: &Resilience,
    recorder: &mut dyn Recorder,
) -> Result<RunOutput, Error> {
    run_dist(
        comm, spec, variant, params, dir, rigor, input, resilience, recorder, None,
    )
}

/// Shared implementation behind the one-shot entry points (`plans: None` —
/// ad-hoc exchanges) and [`FftSession::execute`] (`plans: Some` — the
/// session's per-tile persistent plans).
#[allow(clippy::too_many_arguments)]
fn run_dist(
    comm: &Comm,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    dir: Direction,
    rigor: Rigor,
    input: &[Complex64],
    resilience: &Resilience,
    recorder: &mut dyn Recorder,
    mut plans: Option<&mut TilePlans>,
) -> Result<RunOutput, Error> {
    assert_eq!(comm.size(), spec.p, "communicator size must match spec.p");
    // A zero-extent axis has no transform; planning a size-1 stand-in (as
    // this path once did via `.max(1)`) would silently "succeed" on an
    // empty problem. Reject it for every variant before touching plans.
    for (axis, n) in [("nx", spec.nx), ("ny", spec.ny), ("nz", spec.nz)] {
        if n == 0 {
            return Err(Error::from(ParamError::ZeroExtent(axis)));
        }
    }
    let rank = comm.rank();
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    let nxl = decomp.x.count(rank);
    let nyl = decomp.y.count(rank);
    assert_eq!(
        input.len(),
        nxl * spec.ny * spec.nz,
        "input must be this rank's x-slab in x-y-z layout"
    );

    // Resolve the effective parameters and styles per variant.
    let (params, transpose_style) = match variant {
        Variant::New => {
            // The non-overlapped NEW-0 encoding sets `w = 0`, which the
            // window-range rule rejects — but every other constraint must
            // still hold (a zero `Px`/`Uy`/`T` would divide by zero below).
            if params.w == 0 {
                params.validate_without_window(&spec)
            } else {
                params.validate(&spec)
            }
            .map_err(Error::from)?;
            let style = if spec.square_xy() {
                TransposeStyle::Fast
            } else {
                TransposeStyle::Generic
            };
            (params, style)
        }
        Variant::Th => {
            // TH: tile/window honoured, but no loop tiling and no polls
            // outside FFTy/Pack; plain transpose.
            let nxl_max = decomp.x.max_count().max(1);
            let nyl_max = decomp.y.max_count().max(1);
            let p = TuningParams {
                t: params.t,
                w: params.w,
                px: nxl_max,
                pz: params.t,
                uy: nyl_max,
                uz: params.t,
                fy: params.fy,
                fp: params.fp,
                fu: 0,
                fx: 0,
                threads: params.threads.max(1),
            };
            (p, TransposeStyle::Naive)
        }
        Variant::Fftw => {
            // One tile spanning the whole slab, no window, no polls.
            let p = TuningParams {
                t: spec.nz,
                w: 0,
                px: decomp.x.max_count().max(1),
                pz: spec.nz,
                uy: decomp.y.max_count().max(1),
                uz: spec.nz,
                fy: 0,
                fp: 0,
                fu: 0,
                fx: 0,
                threads: params.threads.max(1),
            };
            (p, TransposeStyle::Generic)
        }
    };

    // Draw plans from the process-wide cache: any geometry this process has
    // transformed before (at this rigor) costs zero planning here, and when
    // all `p` rank threads arrive at once only one of them measures.
    let cache = PlanCache::global();
    let (plan_z, spent_z) = cache.plan_timed(spec.nz, dir, rigor);
    let (plan_y, spent_y) = cache.plan_timed(spec.ny, dir, rigor);
    let (plan_x, spent_x) = cache.plan_timed(spec.nx, dir, rigor);
    let planning = spent_z + spent_y + spent_x;
    let scratch_len = plan_z
        .scratch_len()
        .max(plan_y.scratch_len())
        .max(plan_x.scratch_len());

    let layout = if transpose_style == TransposeStyle::Fast {
        OutLayout::Yzx
    } else {
        OutLayout::Zyx
    };
    // Exchange geometry from the process-wide cache: a repeat of this
    // (shape, tile) does zero schedule setup here.
    let (geom, _cached) = TransformPlanCache::global().geometry(&spec, rank, params.t);
    // Size the session's plan table on first use; tiles freed by a cancel
    // stay None and re-init lazily.
    if let Some(p) = plans.as_deref_mut() {
        if p.len() != geom.tiles.len() {
            p.clear();
            p.resize_with(geom.tiles.len(), || None);
        }
    }
    let mut env = RealEnv {
        comm,
        spec,
        params,
        geom,
        plans,
        setups: 0,
        nxl,
        nyl,
        decomp,
        transpose_style,
        layout,
        plan_z,
        plan_y,
        plan_x,
        plan_scratch: vec![Complex64::ZERO; scratch_len],
        input: input.to_vec(),
        zxy: vec![Complex64::ZERO; nxl * spec.ny * spec.nz],
        out: vec![Complex64::ZERO; spec.nz * nyl * spec.nx],
        send: Vec::new(),
        send_cap: params.t * nxl * spec.ny,
        send_hash: 0,
        abft_line: Vec::new(),
        abft_post: Vec::new(),
        recv_pool: BufferPool::new(params.w + 1, params.t * spec.nx * nyl),
        pending_recv: None,
        pending_plan: None,
        stall_timeout: resilience.stall_timeout,
        poll_boost: resilience.poll_boost,
        boosted: false,
        steps: StepTimes::default(),
        tests: 0,
        started: Instant::now(),
        recorder,
    };

    let recovery = match variant {
        Variant::Th => try_run_th(&mut env, resilience)?,
        _ => try_run_new(&mut env, resilience)?,
    };

    let elapsed = env.started.elapsed().as_secs_f64();
    Ok(RunOutput {
        data: std::mem::take(&mut env.out),
        layout,
        stats: RunStats {
            steps: env.steps,
            elapsed,
            tests: env.tests,
        },
        recovery,
        planning,
        exchange_setups: env.setups,
    })
}

/// Setup-once / execute-many handle for a repeated distributed transform —
/// the user-facing face of the persistent all-to-all plans.
///
/// A session pins `(comm, spec, variant, params, dir, rigor)` and owns one
/// [`PersistentAlltoall`] per communication tile. The first
/// [`FftSession::execute`] initialises each tile's plan as it is first
/// posted (and plans the FFT kernels, unless already cached); every
/// execution after that does **zero planning and zero exchange setup** —
/// [`RunOutput::planning`] is [`Duration::ZERO`] and
/// [`RunOutput::exchange_setups`] is `0`. Dropping the session frees every
/// plan (so no MC006 lint fires); [`FftSession::free`] does the same
/// explicitly.
pub struct FftSession<'a> {
    comm: &'a Comm,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    dir: Direction,
    rigor: Rigor,
    plans: TilePlans,
    executions: u64,
    checkpoint_interval: Option<u64>,
    checkpoint: Option<crate::recover::Checkpoint>,
}

impl<'a> FftSession<'a> {
    /// Creates a session. No setup happens here — plans are initialised
    /// lazily during the first execution, so the first/steady-state split is
    /// observable per execution via [`RunOutput::exchange_setups`].
    pub fn new(
        comm: &'a Comm,
        spec: ProblemSpec,
        variant: Variant,
        params: TuningParams,
        dir: Direction,
        rigor: Rigor,
    ) -> Self {
        FftSession {
            comm,
            spec,
            variant,
            params,
            dir,
            rigor,
            plans: Vec::new(),
            executions: 0,
            checkpoint_interval: None,
            checkpoint: None,
        }
    }

    /// Enables periodic XOR-parity checkpoints: every `k`-th execution
    /// (the 1st, the `k+1`-th, …) collectively captures a
    /// [`crate::recover::Checkpoint`] of that execution's input before
    /// transforming, tagged with the execution number as its generation.
    /// `k = 0` disables. The latest capture is at
    /// [`FftSession::checkpoint`]; feed `Checkpoint::into_source()` to
    /// [`crate::run_recoverable`] to recompute from the last checkpointed
    /// input after a failure.
    pub fn checkpoint_every(mut self, k: u64) -> Self {
        self.checkpoint_interval = (k > 0).then_some(k);
        self
    }

    /// The most recent periodic checkpoint, when
    /// [`FftSession::checkpoint_every`] is active and at least one
    /// execution has run.
    pub fn checkpoint(&self) -> Option<&crate::recover::Checkpoint> {
        self.checkpoint.as_ref()
    }

    /// Executes the transform once over this rank's `input` x-slab,
    /// reusing the session's persistent exchange plans. Collective: every
    /// rank's session must execute in the same order.
    pub fn execute(&mut self, input: &[Complex64]) -> Result<RunOutput, Error> {
        self.execute_traced(input, &Resilience::default(), &mut NoopRecorder)
    }

    /// [`Self::execute`] with tracing and an explicit [`Resilience`]
    /// policy (the [`try_fft3_dist_traced`] of the session path).
    pub fn execute_traced(
        &mut self,
        input: &[Complex64],
        resilience: &Resilience,
        recorder: &mut dyn Recorder,
    ) -> Result<RunOutput, Error> {
        self.executions += 1;
        if let Some(k) = self.checkpoint_interval {
            if (self.executions - 1) % k == 0 {
                self.checkpoint = Some(crate::recover::Checkpoint::capture_tagged(
                    self.comm,
                    &self.spec,
                    input,
                    self.executions,
                ));
            }
        }
        run_dist(
            self.comm,
            self.spec,
            self.variant,
            self.params,
            self.dir,
            self.rigor,
            input,
            resilience,
            recorder,
            Some(&mut self.plans),
        )
    }

    /// Executions attempted over this session's lifetime.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Live per-tile persistent plans (tiles not yet posted, or freed by a
    /// fault path, have none).
    pub fn live_plans(&self) -> usize {
        self.plans.iter().flatten().count()
    }

    /// Releases every persistent plan. Equivalent to dropping the session,
    /// but explicit at call sites that want the free visible.
    pub fn free(mut self) {
        self.release();
    }

    fn release(&mut self) {
        for plan in self.plans.drain(..).flatten() {
            plan.free(self.comm);
        }
    }
}

impl Drop for FftSession<'_> {
    fn drop(&mut self) {
        self.release();
    }
}

/// Builds this rank's x-slab of the deterministic test field.
pub fn local_test_slab(spec: &ProblemSpec, rank: usize) -> Vec<Complex64> {
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    let nxl = decomp.x.count(rank);
    let xoff = decomp.x.offset(rank);
    let mut v = Vec::with_capacity(nxl * spec.ny * spec.nz);
    for xl in 0..nxl {
        for y in 0..spec.ny {
            for z in 0..spec.nz {
                v.push(crate::serial::test_field(xoff + xl, y, z));
            }
        }
    }
    v
}

/// Compares a rank's distributed output slab against the serial reference
/// transform of the full test field; returns the max absolute deviation.
pub fn compare_with_serial(
    spec: &ProblemSpec,
    rank: usize,
    out: &RunOutput,
    reference: &[Complex64],
) -> f64 {
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    let nyl = decomp.y.count(rank);
    let yoff = decomp.y.offset(rank);
    let mut err: f64 = 0.0;
    for z in 0..spec.nz {
        for yl in 0..nyl {
            for x in 0..spec.nx {
                let got = match out.layout {
                    OutLayout::Zyx => out.data[(z * nyl + yl) * spec.nx + x],
                    OutLayout::Yzx => out.data[(yl * spec.nz + z) * spec.nx + x],
                };
                let want = reference[(x * spec.ny + (yoff + yl)) * spec.nz + z];
                err = err.max((got - want).abs());
            }
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{fft3_serial, full_test_array};

    fn check_variant(spec: ProblemSpec, variant: Variant, params: TuningParams, dir: Direction) {
        let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
        fft3_serial(&mut reference, spec.nx, spec.ny, spec.nz, dir);
        let reference = std::sync::Arc::new(reference);

        let errs = mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let out = fft3_dist(&comm, spec, variant, params, dir, Rigor::Estimate, &input);
            compare_with_serial(&spec, comm.rank(), &out, &reference)
        });
        let scale = (spec.len() as f64).max(1.0);
        for (r, e) in errs.iter().enumerate() {
            assert!(
                *e < 1e-9 * scale,
                "rank {r}: err {e} (spec {spec:?}, {variant:?})"
            );
        }
    }

    #[test]
    fn new_variant_matches_serial_cube() {
        let spec = ProblemSpec::cube(16, 4);
        let params = TuningParams::seed(&spec);
        check_variant(spec, Variant::New, params, Direction::Forward);
    }

    #[test]
    fn new_variant_matches_serial_non_square() {
        // Nx ≠ Ny forces the generic transpose path.
        let spec = ProblemSpec {
            nx: 12,
            ny: 8,
            nz: 10,
            p: 4,
        };
        let params = TuningParams {
            t: 3,
            w: 2,
            px: 2,
            pz: 2,
            uy: 2,
            uz: 3,
            fy: 2,
            fp: 1,
            fu: 1,
            fx: 2,
            threads: 1,
        };
        check_variant(spec, Variant::New, params, Direction::Forward);
    }

    #[test]
    fn new_variant_handles_non_divisible_extents() {
        // Nx mod p ≠ 0 and Ny mod p ≠ 0 (the paper's "general case").
        let spec = ProblemSpec {
            nx: 10,
            ny: 9,
            nz: 8,
            p: 4,
        };
        let params = TuningParams {
            t: 4,
            w: 2,
            px: 1,
            pz: 2,
            uy: 2,
            uz: 2,
            fy: 1,
            fp: 1,
            fu: 1,
            fx: 1,
            threads: 1,
        };
        check_variant(spec, Variant::New, params, Direction::Forward);
    }

    #[test]
    fn new_0_variant_matches_serial() {
        let spec = ProblemSpec::cube(12, 3);
        let params = TuningParams::seed(&spec).without_overlap();
        check_variant(spec, Variant::New, params, Direction::Forward);
    }

    #[test]
    fn th_variant_matches_serial() {
        let spec = ProblemSpec::cube(16, 4);
        let params = TuningParams::seed(&spec);
        check_variant(spec, Variant::Th, params, Direction::Forward);
    }

    #[test]
    fn fftw_variant_matches_serial() {
        let spec = ProblemSpec::cube(12, 4);
        let params = TuningParams::seed(&spec);
        check_variant(spec, Variant::Fftw, params, Direction::Forward);
    }

    #[test]
    fn backward_direction_matches_serial() {
        let spec = ProblemSpec::cube(8, 2);
        let params = TuningParams::seed(&spec);
        check_variant(spec, Variant::New, params, Direction::Backward);
    }

    #[test]
    fn single_rank_works() {
        let spec = ProblemSpec::cube(8, 1);
        let params = TuningParams::seed(&spec);
        check_variant(spec, Variant::New, params, Direction::Forward);
    }

    #[test]
    fn w0_with_zero_subtile_is_rejected_not_a_divide_by_zero() {
        // Regression: with `w = 0` (NEW-0) the validator used to be skipped
        // entirely, so a zero Px reached `div_ceil` and crashed with
        // "attempt to divide by zero" instead of a parameter diagnostic.
        // Now the fallible API reports it as a typed error.
        let spec = ProblemSpec::cube(8, 2);
        let mut params = TuningParams::seed(&spec).without_overlap();
        params.px = 0;
        let errs = mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            try_fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
            )
            .map(|_| ())
        });
        for e in errs {
            let err = e.unwrap_err();
            assert!(matches!(err, Error::InfeasibleParams(_)), "{err}");
        }
    }

    #[test]
    fn w0_with_zero_tile_is_rejected_not_a_divide_by_zero() {
        let spec = ProblemSpec::cube(8, 2);
        let mut params = TuningParams::seed(&spec).without_overlap();
        params.t = 0;
        let errs = mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            try_fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
            )
            .map(|_| ())
        });
        for e in errs {
            let err = e.unwrap_err();
            assert!(matches!(err, Error::InfeasibleParams(_)), "{err}");
        }
    }

    #[test]
    #[should_panic(expected = "infeasible parameters")]
    fn legacy_entry_point_still_panics_on_infeasible_parameters() {
        // The panicking API keeps its historical message so existing
        // callers that match on it are unaffected by the `try_` refactor.
        let spec = ProblemSpec::cube(8, 2);
        let mut params = TuningParams::seed(&spec);
        params.w = 99;
        mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
            );
        });
    }

    #[test]
    fn session_repeats_are_exact_with_zero_setup_after_the_first() {
        // The setup-once / execute-many contract end to end: a session's
        // first execution initialises one persistent plan per tile; every
        // later execution reuses them (zero planning, zero exchange setups)
        // and still matches the serial reference exactly.
        let spec = ProblemSpec::cube(16, 4);
        let params = TuningParams::seed(&spec);
        let dir = Direction::Forward;
        let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
        fft3_serial(&mut reference, spec.nx, spec.ny, spec.nz, dir);
        let reference = std::sync::Arc::new(reference);
        let k = params.tiles(&spec) as u64;

        let results = mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let mut session =
                FftSession::new(&comm, spec, Variant::New, params, dir, Rigor::Estimate);
            let mut per_exec = Vec::new();
            for _ in 0..3 {
                let out = session.execute(&input).expect("clean run");
                let err = compare_with_serial(&spec, comm.rank(), &out, &reference);
                per_exec.push((out.exchange_setups, out.planning, err));
            }
            assert_eq!(session.executions(), 3);
            assert_eq!(session.live_plans(), k as usize);
            session.free();
            per_exec
        });
        let scale = (spec.len() as f64).max(1.0);
        for (rank, execs) in results.iter().enumerate() {
            let (first_setups, _, _) = execs[0];
            assert_eq!(
                first_setups, k,
                "rank {rank}: first execution sets up per tile"
            );
            for (i, &(setups, planning, err)) in execs.iter().enumerate() {
                assert!(err < 1e-9 * scale, "rank {rank} exec {i}: err {err}");
                if i > 0 {
                    assert_eq!(setups, 0, "rank {rank} exec {i}: steady state");
                    assert_eq!(planning, Duration::ZERO, "rank {rank} exec {i}");
                }
            }
        }
    }

    #[test]
    fn abft_sum_and_tolerance_flag_corruption_but_not_roundoff() {
        let n = 8;
        let rows = 3;
        let data: Vec<Complex64> = (0..rows * n)
            .map(|i| crate::serial::test_field(i % 5, i % 3, i))
            .collect();
        let starts: Vec<usize> = (0..rows).map(|r| r * n).collect();
        let mut line = Vec::new();
        abft_sum_rows(&mut line, &data, &starts, n);
        let post = line.clone();
        assert!(abft_agrees(&line, &post, rows));
        // Roundoff-scale deviation (what an honest FFT accumulates) is
        // tolerated…
        let mut drift = line.clone();
        drift[2].re += 1e-14;
        assert!(abft_agrees(&line, &drift, rows));
        // …corruption-scale deviation is not.
        let mut corrupt = line.clone();
        corrupt[2].re += 1e-3;
        assert!(!abft_agrees(&line, &corrupt, rows));
    }

    /// The staging-buffer hash catches an injected memory bit-flip between
    /// pack and post, and the retransmit rung re-packs from the pristine
    /// transform state — the run completes with the correct answer and the
    /// victim reports the heal.
    #[test]
    fn memory_bitflip_is_detected_and_healed_by_retransmit() {
        let spec = ProblemSpec::cube(8, 2);
        let params = TuningParams::seed(&spec);
        let dir = Direction::Forward;
        let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
        fft3_serial(&mut reference, spec.nx, spec.ny, spec.nz, dir);
        let reference = std::sync::Arc::new(reference);
        let victim = 1;
        let faults = faultplan::FaultPlan::seeded(0xb17).with_memory_bitflip(victim, 0);
        let results = mpisim::run_with_faults(spec.p, faults, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let out = try_fft3_dist_traced(
                &comm,
                spec,
                Variant::New,
                params,
                dir,
                Rigor::Estimate,
                &input,
                &Resilience::default(),
                &mut NoopRecorder,
            )
            .expect("a detected pack corruption heals in place");
            let err = compare_with_serial(&spec, comm.rank(), &out, &reference);
            (err, out.recovery.corruptions_healed, out.recovery.actions)
        });
        let tol = 1e-9 * spec.len() as f64;
        for (rank, (err, healed, actions)) in results.into_iter().enumerate() {
            assert!(err < tol, "rank {rank}: err {err}");
            if rank == victim {
                assert!(healed >= 1, "victim heals its corruption");
                assert!(actions.contains(&DegradeAction::Retransmit));
            } else {
                assert_eq!(healed, 0, "rank {rank} saw no corruption");
            }
        }
    }

    #[test]
    fn session_checkpoints_on_the_configured_cadence() {
        let spec = ProblemSpec::cube(8, 2);
        let params = TuningParams::seed(&spec);
        mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let mut session = FftSession::new(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
            )
            .checkpoint_every(2);
            assert!(session.checkpoint().is_none(), "nothing captured yet");
            for exec in 1..=4u64 {
                session.execute(&input).expect("clean run");
                // Captures on executions 1 and 3: generation = execution.
                let expect_gen = if exec >= 3 { 3 } else { 1 };
                let ckpt = session.checkpoint().expect("captured");
                assert_eq!(ckpt.generation(), expect_gen, "after exec {exec}");
            }
            // The capture is usable: the source serves this rank's input
            // back while the membership is intact.
            let ckpt = session.checkpoint().expect("captured");
            assert_eq!(ckpt.memory_elements(), input.len() + ckpt.parity_elements());
            session.free();
        });
    }

    #[test]
    fn one_shot_calls_keep_paying_setup_per_tile() {
        // Contrast case for the session test above: fft3_dist's ad-hoc
        // exchanges negotiate a schedule on every post, every call.
        let spec = ProblemSpec::cube(8, 2);
        let params = TuningParams::seed(&spec);
        let k = params.tiles(&spec) as u64;
        let setups = mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let a = fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
            );
            let b = fft3_dist(
                &comm,
                spec,
                Variant::New,
                params,
                Direction::Forward,
                Rigor::Estimate,
                &input,
            );
            (a.exchange_setups, b.exchange_setups)
        });
        for (a, b) in setups {
            assert_eq!(a, k);
            assert_eq!(b, k, "ad-hoc path re-negotiates every call");
        }
    }

    #[test]
    fn buffer_pool_caps_retained_buffers() {
        // Regression: the recv pool used to be an unbounded Vec that only
        // ever grew; returns beyond the pipeline's working set are dropped.
        let mut pool = BufferPool::new(3, 100);
        for _ in 0..8 {
            pool.put(vec![Complex64::ZERO; 10]);
        }
        assert_eq!(pool.retained(), 3);
        assert!(pool.retained_capacity() <= 3 * 100);
    }

    #[test]
    fn buffer_pool_shrinks_oversized_returns() {
        // Regression: a buffer sized for a peak tile used to keep its full
        // capacity forever; now it is shrunk to the per-buffer cap.
        let mut pool = BufferPool::new(4, 8);
        pool.put(vec![Complex64::ZERO; 64]);
        assert!(
            pool.retained_capacity() <= 8,
            "capacity {}",
            pool.retained_capacity()
        );
        let b = pool.take(4);
        assert_eq!(b.len(), 4);
        assert!(b.capacity() < 64);
    }

    #[test]
    fn buffer_pool_recycles_and_zeroes() {
        let mut pool = BufferPool::new(2, 16);
        let mut b = pool.take(4);
        b.fill(Complex64::new(7.0, 7.0));
        pool.put(b);
        let b = pool.take(8);
        assert!(b.iter().all(|&c| c == Complex64::ZERO));
        assert_eq!(pool.retained(), 0);
    }

    #[test]
    fn poll_schedule_distributes_evenly() {
        let mut s = PollSchedule::new(4, 8);
        let emitted: Vec<u64> = (0..4).map(|_| s.after_unit()).collect();
        assert_eq!(emitted, vec![2, 2, 2, 2]);
        let mut s = PollSchedule::new(3, 2);
        let emitted: Vec<u64> = (0..3).map(|_| s.after_unit()).collect();
        assert_eq!(emitted.iter().sum::<u64>(), 2);
    }
}
