//! Real execution backend: the distributed 3-D FFT running on actual data
//! over the [`mpisim`] runtime, with [`cfft`] kernels.
//!
//! This backend exists to prove the *algorithm* correct — every variant
//! (NEW, NEW-0, TH, FFTW-style) must reproduce the serial reference
//! transform bit-for-bit (up to floating-point tolerance) for any problem
//! shape, divisible or not. The performance story is told by the simulated
//! backend; here the timings are real wall-clock and only meaningful for
//! laptop-scale smoke benchmarks.

use crate::breakdown::{RunStats, StepTimes};
use crate::decomp::Decomp;
use crate::params::{ProblemSpec, TuningParams};
use crate::pipeline::{run_new, run_th, OverlapEnv};
use cfft::planner::{Plan1d, Planner, Rigor};
use cfft::transpose::{permute3, xzy_fast, Dims3, XYZ_TO_ZXY};
use cfft::{Complex64, Direction};
use mpisim::{Comm, IAlltoall};
use std::sync::Arc;
use std::time::Instant;

/// Which algorithm variant to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The paper's NEW: full ten-parameter overlap pipeline (use
    /// [`TuningParams::without_overlap`] for NEW-0).
    New,
    /// Hoefler et al.'s TH: overlap restricted to FFTy+Pack, no loop
    /// tiling, naive transpose.
    Th,
    /// FFTW-style baseline: one blocking all-to-all over the whole slab,
    /// no tiles, no overlap.
    Fftw,
}

/// How the Transpose step is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransposeStyle {
    /// §3.5 fast path (`x-z-y`), legal only when `Nx = Ny`.
    Fast,
    /// Cache-blocked generic `z-x-y` (the "FFTW guru" quality path).
    Generic,
    /// Unblocked triple loop — models TH's non-optimized rearrangement.
    Naive,
}

/// Output memory layout of the distributed transform (y-slab local array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutLayout {
    /// `(z, y_local, x)` with x contiguous — the standard path's result.
    Zyx,
    /// `(y_local, z, x)` with x contiguous — the §3.5 fast path's result.
    Yzx,
}

/// Result of a distributed execution on one rank.
pub struct RunOutput {
    /// This rank's y-slab of the transformed array.
    pub data: Vec<Complex64>,
    /// Layout of `data`.
    pub layout: OutLayout,
    /// Timing statistics.
    pub stats: RunStats,
}

/// Distributes polls evenly across a loop of `total_units` work units.
struct PollSchedule {
    total_units: u64,
    polls: u64,
    done: u64,
    issued: u64,
}

impl PollSchedule {
    fn new(total_units: usize, polls: u32) -> Self {
        PollSchedule {
            total_units: total_units.max(1) as u64,
            polls: polls as u64,
            done: 0,
            issued: 0,
        }
    }

    /// Marks one unit done; returns how many polls are now due.
    fn after_unit(&mut self) -> u64 {
        self.done += 1;
        let target = self.polls * self.done / self.total_units;
        let due = target - self.issued;
        self.issued = target;
        due
    }
}

struct RealEnv<'a> {
    comm: &'a Comm,
    spec: ProblemSpec,
    params: TuningParams,
    decomp: Decomp,
    nxl: usize,
    nyl: usize,
    transpose_style: TransposeStyle,
    layout: OutLayout,
    plan_z: Arc<Plan1d>,
    plan_y: Arc<Plan1d>,
    plan_x: Arc<Plan1d>,
    plan_scratch: Vec<Complex64>,
    /// Input slab (x-y-z), consumed by FFTz+Transpose.
    input: Vec<Complex64>,
    /// Transposed slab: z-x-y (standard) or x-z-y (fast).
    zxy: Vec<Complex64>,
    /// Output slab: z-y-x or y-z-x.
    out: Vec<Complex64>,
    /// Per-destination-block staging for the current tile's pack.
    send: Vec<Complex64>,
    /// Recycled receive buffers.
    recv_pool: Vec<Vec<Complex64>>,
    /// Receive data of the most recently waited tile, awaiting unpack.
    pending_recv: Option<Vec<Complex64>>,
    steps: StepTimes,
    tests: u64,
    started: Instant,
}

impl<'a> RealEnv<'a> {
    fn tile_range(&self, tile: usize) -> (usize, usize) {
        let z0 = tile * self.params.t;
        let z1 = (z0 + self.params.t).min(self.spec.nz);
        (z0, z1)
    }

    /// Per-destination element counts of tile `tile`'s all-to-all.
    fn send_counts(&self, tz: usize) -> Vec<usize> {
        (0..self.spec.p).map(|q| tz * self.nxl * self.decomp.y.count(q)).collect()
    }

    fn recv_counts(&self, tz: usize) -> Vec<usize> {
        (0..self.spec.p).map(|s| tz * self.decomp.x.count(s) * self.nyl).collect()
    }

    fn poll_inflight(&mut self, inflight: &mut [(usize, IAlltoall<Complex64>)], times: u64) {
        if times == 0 || inflight.is_empty() {
            return;
        }
        let t0 = Instant::now();
        for _ in 0..times {
            for (_, req) in inflight.iter_mut() {
                req.test(self.comm);
                self.tests += 1;
            }
        }
        self.steps.test += t0.elapsed().as_secs_f64();
    }

    /// Flat index into the transposed slab for `(z, xl, y)`.
    #[inline]
    fn zxy_idx(&self, z: usize, xl: usize, y: usize) -> usize {
        match self.transpose_style {
            TransposeStyle::Fast => (xl * self.spec.nz + z) * self.spec.ny + y,
            _ => (z * self.nxl + xl) * self.spec.ny + y,
        }
    }

    /// Flat index into the output slab for `(z, yl, x)`.
    #[inline]
    fn out_idx(&self, z: usize, yl: usize, x: usize) -> usize {
        match self.layout {
            OutLayout::Zyx => (z * self.nyl + yl) * self.spec.nx + x,
            OutLayout::Yzx => (yl * self.spec.nz + z) * self.spec.nx + x,
        }
    }
}

impl<'a> OverlapEnv for RealEnv<'a> {
    type Req = IAlltoall<Complex64>;

    fn num_tiles(&self) -> usize {
        self.params.tiles(&self.spec)
    }

    fn window(&self) -> usize {
        self.params.w
    }

    fn fftz_transpose(&mut self) {
        let (nx_l, ny, nz) = (self.nxl, self.spec.ny, self.spec.nz);
        // FFTz: z lines are contiguous in the x-y-z input.
        let t0 = Instant::now();
        for line in 0..nx_l * ny {
            let s = line * nz;
            self.plan_z.execute(&mut self.input[s..s + nz], &mut self.plan_scratch);
        }
        self.steps.fftz += t0.elapsed().as_secs_f64();

        // Transpose into the tile-friendly layout.
        let t0 = Instant::now();
        let sd = Dims3::new(nx_l, ny, nz);
        match self.transpose_style {
            TransposeStyle::Fast => xzy_fast(&self.input, &mut self.zxy, sd),
            TransposeStyle::Generic => permute3(&self.input, &mut self.zxy, sd, XYZ_TO_ZXY),
            TransposeStyle::Naive => {
                // Deliberately unblocked: models a straightforward loop nest.
                for x in 0..nx_l {
                    for y in 0..ny {
                        for z in 0..nz {
                            self.zxy[(z * nx_l + x) * ny + y] = self.input[(x * ny + y) * nz + z];
                        }
                    }
                }
            }
        }
        self.steps.transpose += t0.elapsed().as_secs_f64();
    }

    fn ffty_pack(&mut self, tile: usize, inflight: &mut [(usize, Self::Req)]) {
        let (z0, z1) = self.tile_range(tile);
        let tz = z1 - z0;
        let (p, ny) = (self.spec.p, self.spec.ny);
        let nxl = self.nxl;
        let (px, pz) = (self.params.px.min(nxl.max(1)), self.params.pz.min(tz.max(1)));
        if nxl == 0 || tz == 0 {
            return;
        }

        // Sub-tile grid (Figure 4, left): Px × Ny × Pz blocks.
        let xblocks = nxl.div_ceil(px);
        let zblocks = tz.div_ceil(pz);
        let subtiles = xblocks * zblocks;
        let mut sched_y = PollSchedule::new(subtiles, self.params.fy);
        let mut sched_p = PollSchedule::new(subtiles, self.params.fp);

        let send_counts = self.send_counts(tz);
        let mut send_displs = vec![0usize; p];
        for q in 1..p {
            send_displs[q] = send_displs[q - 1] + send_counts[q - 1];
        }
        let total_send: usize = send_counts.iter().sum();
        if self.send.len() < total_send {
            self.send.resize(total_send, Complex64::ZERO);
        }

        for zb in 0..zblocks {
            let zs = z0 + zb * pz;
            let ze = (zs + pz).min(z1);
            for xb in 0..xblocks {
                let xs = xb * px;
                let xe = (xs + px).min(nxl);

                // FFTy on every y line of the sub-tile.
                let t0 = Instant::now();
                for z in zs..ze {
                    for xl in xs..xe {
                        let s = self.zxy_idx(z, xl, 0);
                        self.plan_y.execute(&mut self.zxy[s..s + ny], &mut self.plan_scratch);
                    }
                }
                self.steps.ffty += t0.elapsed().as_secs_f64();
                let due = sched_y.after_unit();
                self.poll_inflight(inflight, due);

                // Pack the sub-tile into per-destination blocks, each laid
                // out (z_local, x_local, y_local).
                let t0 = Instant::now();
                for z in zs..ze {
                    let zl = z - z0;
                    for xl in xs..xe {
                        let row = self.zxy_idx(z, xl, 0);
                        let in_block_row = zl * nxl + xl;
                        for q in 0..p {
                            let nyl_q = self.decomp.y.count(q);
                            let yoff = self.decomp.y.offset(q);
                            let dst = send_displs[q] + in_block_row * nyl_q;
                            let src = row + yoff;
                            // Contiguous y-run copy.
                            self.send[dst..dst + nyl_q]
                                .copy_from_slice(&self.zxy[src..src + nyl_q]);
                        }
                    }
                }
                self.steps.pack += t0.elapsed().as_secs_f64();
                let due = sched_p.after_unit();
                self.poll_inflight(inflight, due);
            }
        }
    }

    fn post_a2a(&mut self, tile: usize) -> Self::Req {
        let (z0, z1) = self.tile_range(tile);
        let tz = z1 - z0;
        let send_counts = self.send_counts(tz);
        let recv_counts = self.recv_counts(tz);
        let total_send: usize = send_counts.iter().sum();
        let total_recv: usize = recv_counts.iter().sum();
        let mut recv = self.recv_pool.pop().unwrap_or_default();
        recv.resize(total_recv, Complex64::ZERO);
        let t0 = Instant::now();
        let req = self.comm.ialltoallv(&self.send[..total_send], &send_counts, &recv_counts, recv);
        self.steps.ialltoall += t0.elapsed().as_secs_f64();
        req
    }

    fn wait(&mut self, _tile: usize, req: Self::Req) {
        let t0 = Instant::now();
        let recv = req.wait(self.comm);
        self.steps.wait += t0.elapsed().as_secs_f64();
        self.pending_recv = Some(recv);
    }

    fn unpack_fftx(&mut self, tile: usize, inflight: &mut [(usize, Self::Req)]) {
        let recv = self.pending_recv.take().expect("unpack without a waited tile");
        let (z0, z1) = self.tile_range(tile);
        let tz = z1 - z0;
        let (p, nx) = (self.spec.p, self.spec.nx);
        let nyl = self.nyl;
        if nyl == 0 || tz == 0 {
            self.recv_pool.push(recv);
            return;
        }
        let (uy, uz) = (self.params.uy.min(nyl), self.params.uz.min(tz));

        let recv_counts = self.recv_counts(tz);
        let mut recv_displs = vec![0usize; p];
        for s in 1..p {
            recv_displs[s] = recv_displs[s - 1] + recv_counts[s - 1];
        }

        // Sub-tile grid (Figure 4, right): Nx × Uy × Uz blocks.
        let yblocks = nyl.div_ceil(uy);
        let zblocks = tz.div_ceil(uz);
        let subtiles = yblocks * zblocks;
        let mut sched_u = PollSchedule::new(subtiles, self.params.fu);
        let mut sched_x = PollSchedule::new(subtiles, self.params.fx);

        for zb in 0..zblocks {
            let zs = z0 + zb * uz;
            let ze = (zs + uz).min(z1);
            for yb in 0..yblocks {
                let ys = yb * uy;
                let ye = (ys + uy).min(nyl);

                // Unpack: source block from rank s is (z_local, x_in_s,
                // y_local); destination rows are x-contiguous.
                let t0 = Instant::now();
                for z in zs..ze {
                    let zl = z - z0;
                    for yl in ys..ye {
                        let out_row = self.out_idx(z, yl, 0);
                        for s in 0..p {
                            let nxl_s = self.decomp.x.count(s);
                            let xoff = self.decomp.x.offset(s);
                            let base = recv_displs[s] + (zl * nxl_s) * nyl + yl;
                            for xl in 0..nxl_s {
                                self.out[out_row + xoff + xl] = recv[base + xl * nyl];
                            }
                        }
                    }
                }
                self.steps.unpack += t0.elapsed().as_secs_f64();
                let due = sched_u.after_unit();
                self.poll_inflight(inflight, due);

                // FFTx on the unpacked x lines.
                let t0 = Instant::now();
                for z in zs..ze {
                    for yl in ys..ye {
                        let s = self.out_idx(z, yl, 0);
                        self.plan_x.execute(&mut self.out[s..s + nx], &mut self.plan_scratch);
                    }
                }
                self.steps.fftx += t0.elapsed().as_secs_f64();
                let due = sched_x.after_unit();
                self.poll_inflight(inflight, due);
            }
        }
        self.recv_pool.push(recv);
    }
}

/// Executes one distributed 3-D FFT on this rank.
///
/// `input` is this rank's x-slab in `x-y-z` layout (`count_x(rank)·ny·nz`
/// elements). Returns this rank's y-slab of the result plus statistics.
/// Collective: every rank of `comm` must call this with consistent
/// arguments.
pub fn fft3_dist(
    comm: &Comm,
    spec: ProblemSpec,
    variant: Variant,
    params: TuningParams,
    dir: Direction,
    rigor: Rigor,
    input: &[Complex64],
) -> RunOutput {
    assert_eq!(comm.size(), spec.p, "communicator size must match spec.p");
    let rank = comm.rank();
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    let nxl = decomp.x.count(rank);
    let nyl = decomp.y.count(rank);
    assert_eq!(
        input.len(),
        nxl * spec.ny * spec.nz,
        "input must be this rank's x-slab in x-y-z layout"
    );

    // Resolve the effective parameters and styles per variant.
    let (params, transpose_style) = match variant {
        Variant::New => {
            params
                .validate(&spec)
                .or_else(|e| if params.w == 0 { Ok(()) } else { Err(e) })
                .unwrap_or_else(|e| panic!("infeasible parameters: {e}"));
            let style = if spec.square_xy() { TransposeStyle::Fast } else { TransposeStyle::Generic };
            (params, style)
        }
        Variant::Th => {
            // TH: tile/window honoured, but no loop tiling and no polls
            // outside FFTy/Pack; plain transpose.
            let nxl_max = decomp.x.max_count().max(1);
            let nyl_max = decomp.y.max_count().max(1);
            let p = TuningParams {
                t: params.t,
                w: params.w,
                px: nxl_max,
                pz: params.t,
                uy: nyl_max,
                uz: params.t,
                fy: params.fy,
                fp: params.fp,
                fu: 0,
                fx: 0,
            };
            (p, TransposeStyle::Naive)
        }
        Variant::Fftw => {
            // One tile spanning the whole slab, no window, no polls.
            let p = TuningParams {
                t: spec.nz,
                w: 0,
                px: decomp.x.max_count().max(1),
                pz: spec.nz,
                uy: decomp.y.max_count().max(1),
                uz: spec.nz,
                fy: 0,
                fp: 0,
                fu: 0,
                fx: 0,
            };
            (p, TransposeStyle::Generic)
        }
    };

    let mut planner = Planner::new(rigor);
    let plan_z = planner.plan(spec.nz.max(1), dir);
    let plan_y = planner.plan(spec.ny.max(1), dir);
    let plan_x = planner.plan(spec.nx.max(1), dir);
    let scratch_len = plan_z
        .scratch_len()
        .max(plan_y.scratch_len())
        .max(plan_x.scratch_len());

    let layout = if transpose_style == TransposeStyle::Fast { OutLayout::Yzx } else { OutLayout::Zyx };
    let mut env = RealEnv {
        comm,
        spec,
        params,
        nxl,
        nyl,
        decomp,
        transpose_style,
        layout,
        plan_z,
        plan_y,
        plan_x,
        plan_scratch: vec![Complex64::ZERO; scratch_len],
        input: input.to_vec(),
        zxy: vec![Complex64::ZERO; nxl * spec.ny * spec.nz],
        out: vec![Complex64::ZERO; spec.nz * nyl * spec.nx],
        send: Vec::new(),
        recv_pool: Vec::new(),
        pending_recv: None,
        steps: StepTimes::default(),
        tests: 0,
        started: Instant::now(),
    };

    match variant {
        Variant::Th => run_th(&mut env),
        _ => run_new(&mut env),
    }

    let elapsed = env.started.elapsed().as_secs_f64();
    RunOutput {
        data: std::mem::take(&mut env.out),
        layout,
        stats: RunStats { steps: env.steps, elapsed, tests: env.tests },
    }
}

/// Builds this rank's x-slab of the deterministic test field.
pub fn local_test_slab(spec: &ProblemSpec, rank: usize) -> Vec<Complex64> {
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    let nxl = decomp.x.count(rank);
    let xoff = decomp.x.offset(rank);
    let mut v = Vec::with_capacity(nxl * spec.ny * spec.nz);
    for xl in 0..nxl {
        for y in 0..spec.ny {
            for z in 0..spec.nz {
                v.push(crate::serial::test_field(xoff + xl, y, z));
            }
        }
    }
    v
}

/// Compares a rank's distributed output slab against the serial reference
/// transform of the full test field; returns the max absolute deviation.
pub fn compare_with_serial(
    spec: &ProblemSpec,
    rank: usize,
    out: &RunOutput,
    reference: &[Complex64],
) -> f64 {
    let decomp = Decomp::new(spec.nx, spec.ny, spec.p);
    let nyl = decomp.y.count(rank);
    let yoff = decomp.y.offset(rank);
    let mut err: f64 = 0.0;
    for z in 0..spec.nz {
        for yl in 0..nyl {
            for x in 0..spec.nx {
                let got = match out.layout {
                    OutLayout::Zyx => out.data[(z * nyl + yl) * spec.nx + x],
                    OutLayout::Yzx => out.data[(yl * spec.nz + z) * spec.nx + x],
                };
                let want = reference[(x * spec.ny + (yoff + yl)) * spec.nz + z];
                err = err.max((got - want).abs());
            }
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{fft3_serial, full_test_array};

    fn check_variant(spec: ProblemSpec, variant: Variant, params: TuningParams, dir: Direction) {
        let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
        fft3_serial(&mut reference, spec.nx, spec.ny, spec.nz, dir);
        let reference = std::sync::Arc::new(reference);

        let errs = mpisim::run(spec.p, move |comm| {
            let input = local_test_slab(&spec, comm.rank());
            let out = fft3_dist(&comm, spec, variant, params, dir, Rigor::Estimate, &input);
            compare_with_serial(&spec, comm.rank(), &out, &reference)
        });
        let scale = (spec.len() as f64).max(1.0);
        for (r, e) in errs.iter().enumerate() {
            assert!(*e < 1e-9 * scale, "rank {r}: err {e} (spec {spec:?}, {variant:?})");
        }
    }

    #[test]
    fn new_variant_matches_serial_cube() {
        let spec = ProblemSpec::cube(16, 4);
        let params = TuningParams::seed(&spec);
        check_variant(spec, Variant::New, params, Direction::Forward);
    }

    #[test]
    fn new_variant_matches_serial_non_square() {
        // Nx ≠ Ny forces the generic transpose path.
        let spec = ProblemSpec { nx: 12, ny: 8, nz: 10, p: 4 };
        let params = TuningParams { t: 3, w: 2, px: 2, pz: 2, uy: 2, uz: 3, fy: 2, fp: 1, fu: 1, fx: 2 };
        check_variant(spec, Variant::New, params, Direction::Forward);
    }

    #[test]
    fn new_variant_handles_non_divisible_extents() {
        // Nx mod p ≠ 0 and Ny mod p ≠ 0 (the paper's "general case").
        let spec = ProblemSpec { nx: 10, ny: 9, nz: 8, p: 4 };
        let params = TuningParams { t: 4, w: 2, px: 1, pz: 2, uy: 2, uz: 2, fy: 1, fp: 1, fu: 1, fx: 1 };
        check_variant(spec, Variant::New, params, Direction::Forward);
    }

    #[test]
    fn new_0_variant_matches_serial() {
        let spec = ProblemSpec::cube(12, 3);
        let params = TuningParams::seed(&spec).without_overlap();
        check_variant(spec, Variant::New, params, Direction::Forward);
    }

    #[test]
    fn th_variant_matches_serial() {
        let spec = ProblemSpec::cube(16, 4);
        let params = TuningParams::seed(&spec);
        check_variant(spec, Variant::Th, params, Direction::Forward);
    }

    #[test]
    fn fftw_variant_matches_serial() {
        let spec = ProblemSpec::cube(12, 4);
        let params = TuningParams::seed(&spec);
        check_variant(spec, Variant::Fftw, params, Direction::Forward);
    }

    #[test]
    fn backward_direction_matches_serial() {
        let spec = ProblemSpec::cube(8, 2);
        let params = TuningParams::seed(&spec);
        check_variant(spec, Variant::New, params, Direction::Backward);
    }

    #[test]
    fn single_rank_works() {
        let spec = ProblemSpec::cube(8, 1);
        let params = TuningParams::seed(&spec);
        check_variant(spec, Variant::New, params, Direction::Forward);
    }

    #[test]
    fn poll_schedule_distributes_evenly() {
        let mut s = PollSchedule::new(4, 8);
        let emitted: Vec<u64> = (0..4).map(|_| s.after_unit()).collect();
        assert_eq!(emitted, vec![2, 2, 2, 2]);
        let mut s = PollSchedule::new(3, 2);
        let emitted: Vec<u64> = (0..3).map(|_| s.after_unit()).collect();
        assert_eq!(emitted.iter().sum::<u64>(), 2);
    }
}
