//! 1-D (slab) domain decomposition (§2.2).
//!
//! The input array is split into x-slabs (one per rank); after the
//! all-to-all it is split into y-slabs. The general case — extents not
//! divisible by `p` — is handled the way the paper's code does ("our
//! current code handles the general case whether Nx and Ny are divisible
//! by p or not"): the first `N mod p` ranks carry one extra plane.

/// How one axis of length `n` is divided among `p` ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisSplit {
    counts: Vec<usize>,
    offsets: Vec<usize>,
}

impl AxisSplit {
    /// Splits `n` planes over `p` ranks, big blocks first.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p >= 1, "cannot split over zero ranks");
        let base = n / p;
        let extra = n % p;
        let mut counts = Vec::with_capacity(p);
        let mut offsets = Vec::with_capacity(p);
        let mut off = 0;
        for r in 0..p {
            let c = base + usize::from(r < extra);
            counts.push(c);
            offsets.push(off);
            off += c;
        }
        AxisSplit { counts, offsets }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.counts.len()
    }

    /// Planes owned by `rank`.
    #[inline]
    pub fn count(&self, rank: usize) -> usize {
        self.counts[rank]
    }

    /// First plane owned by `rank`.
    #[inline]
    pub fn offset(&self, rank: usize) -> usize {
        self.offsets[rank]
    }

    /// All counts, rank-ordered.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The rank owning plane `i`.
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(
            i < self.offsets.last().copied().unwrap_or(0)
                + self.counts.last().copied().unwrap_or(0)
        );
        // Counts are non-increasing, so a linear scan from the estimated
        // position is exact; p is small enough that binary search wins
        // nothing.
        match self.offsets.binary_search(&i) {
            Ok(r) => r,
            Err(r) => r - 1,
        }
    }

    /// Largest per-rank count (`⌈n/p⌉`).
    pub fn max_count(&self) -> usize {
        self.counts.first().copied().unwrap_or(0)
    }
}

/// The two axis splits a slab-decomposed 3-D FFT needs: x-slabs before the
/// all-to-all, y-slabs after.
#[derive(Debug, Clone)]
pub struct Decomp {
    /// Split of the x axis (input distribution).
    pub x: AxisSplit,
    /// Split of the y axis (output distribution).
    pub y: AxisSplit,
}

impl Decomp {
    /// Builds the decomposition for `nx`, `ny` over `p` ranks.
    pub fn new(nx: usize, ny: usize, p: usize) -> Self {
        Decomp {
            x: AxisSplit::new(nx, p),
            y: AxisSplit::new(ny, p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisible_split_is_uniform() {
        let s = AxisSplit::new(256, 16);
        assert!(s.counts().iter().all(|&c| c == 16));
        assert_eq!(s.offset(5), 80);
        assert_eq!(s.max_count(), 16);
    }

    #[test]
    fn non_divisible_split_partitions_exactly() {
        for n in [7usize, 10, 100, 255, 257] {
            for p in [1usize, 2, 3, 5, 8, 16] {
                let s = AxisSplit::new(n, p);
                let total: usize = s.counts().iter().sum();
                assert_eq!(total, n, "n={n} p={p}");
                // Offsets are the prefix sums.
                let mut off = 0;
                for r in 0..p {
                    assert_eq!(s.offset(r), off);
                    off += s.count(r);
                }
                // Counts differ by at most one, larger first.
                let max = s.count(0);
                assert!(s.counts().iter().all(|&c| c == max || c + 1 == max));
            }
        }
    }

    #[test]
    fn owner_inverts_offsets() {
        let s = AxisSplit::new(17, 5); // counts 4,4,3,3,3
        for i in 0..17 {
            let r = s.owner(i);
            assert!(
                i >= s.offset(r) && i < s.offset(r) + s.count(r),
                "i={i} r={r}"
            );
        }
    }

    #[test]
    fn more_ranks_than_planes_gives_empty_slabs() {
        let s = AxisSplit::new(3, 5);
        assert_eq!(s.counts(), &[1, 1, 1, 0, 0]);
        assert_eq!(s.offset(4), 3);
    }

    #[test]
    fn decomp_builds_both_axes() {
        let d = Decomp::new(10, 20, 4);
        assert_eq!(d.x.counts(), &[3, 3, 2, 2]);
        assert_eq!(d.y.counts(), &[5, 5, 5, 5]);
    }
}
