//! 1-D (slab) domain decomposition (§2.2) and slab-vs-pencil selection.
//!
//! The input array is split into x-slabs (one per rank); after the
//! all-to-all it is split into y-slabs. The general case — extents not
//! divisible by `p` — is handled the way the paper's code does ("our
//! current code handles the general case whether Nx and Ny are divisible
//! by p or not"): the first `N mod p` ranks carry one extra plane.
//!
//! [`auto_select`] chooses between this slab decomposition and the 2-D
//! pencil decomposition ([`crate::pencil`]) per `(N, p)` by pricing both
//! overlapped pipelines on the simnet cost model — §2.2's trade-off
//! ("slabs can win at moderate scale, pencils scale to N²") made
//! operational.

use crate::error::Error;
use crate::params::{ParamError, ProblemSpec, TuningParams};
use crate::pencil::{pencil_overlap_simulated_params, pencil_seed, PencilGrid};
use crate::real_env::Variant;
use crate::sim_env::fft3_simulated;
use simnet::Platform;

/// How one axis of length `n` is divided among `p` ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisSplit {
    counts: Vec<usize>,
    offsets: Vec<usize>,
}

impl AxisSplit {
    /// Splits `n` planes over `p` ranks, big blocks first.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p >= 1, "cannot split over zero ranks");
        let base = n / p;
        let extra = n % p;
        let mut counts = Vec::with_capacity(p);
        let mut offsets = Vec::with_capacity(p);
        let mut off = 0;
        for r in 0..p {
            let c = base + usize::from(r < extra);
            counts.push(c);
            offsets.push(off);
            off += c;
        }
        AxisSplit { counts, offsets }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.counts.len()
    }

    /// Planes owned by `rank`.
    #[inline]
    pub fn count(&self, rank: usize) -> usize {
        self.counts[rank]
    }

    /// First plane owned by `rank`.
    #[inline]
    pub fn offset(&self, rank: usize) -> usize {
        self.offsets[rank]
    }

    /// All counts, rank-ordered.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The rank owning plane `i`.
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(
            i < self.offsets.last().copied().unwrap_or(0)
                + self.counts.last().copied().unwrap_or(0)
        );
        // Counts are non-increasing, so a linear scan from the estimated
        // position is exact; p is small enough that binary search wins
        // nothing.
        match self.offsets.binary_search(&i) {
            Ok(r) => r,
            Err(r) => r - 1,
        }
    }

    /// Largest per-rank count (`⌈n/p⌉`).
    pub fn max_count(&self) -> usize {
        self.counts.first().copied().unwrap_or(0)
    }
}

/// The two axis splits a slab-decomposed 3-D FFT needs: x-slabs before the
/// all-to-all, y-slabs after.
#[derive(Debug, Clone)]
pub struct Decomp {
    /// Split of the x axis (input distribution).
    pub x: AxisSplit,
    /// Split of the y axis (output distribution).
    pub y: AxisSplit,
}

impl Decomp {
    /// Builds the decomposition for `nx`, `ny` over `p` ranks.
    pub fn new(nx: usize, ny: usize, p: usize) -> Self {
        Decomp {
            x: AxisSplit::new(nx, p),
            y: AxisSplit::new(ny, p),
        }
    }
}

/// Which decomposition [`auto_select`] picked for a `(spec, p)` point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decomposition {
    /// 1-D slab decomposition (the paper's design; parallelism ≤ min(Nx, Ny)).
    Slab,
    /// 2-D pencil decomposition on the given grid (parallelism ≤ Nx·Ny).
    Pencil(PencilGrid),
}

/// Picks the faster decomposition for running `spec`'s problem over `p`
/// ranks on `platform`, by pricing both **overlapped** pipelines on the
/// simnet cost model: the slab NEW variant with its seed parameters vs the
/// pencil backend on the near-square grid with [`pencil_seed`]. Past the
/// slab scaling wall (`p > min(Nx, Ny)`, where slab ranks idle) the pencil
/// wins without simulation.
///
/// `spec.p` is ignored; `p` is the rank count under consideration, so one
/// spec can be swept over a ladder of scales (the `decomp_crossover`
/// bench does exactly that).
pub fn auto_select(
    platform: Platform,
    spec: &ProblemSpec,
    p: usize,
) -> Result<Decomposition, Error> {
    if p == 0 {
        return Err(ParamError::ZeroRanks.into());
    }
    let spec = ProblemSpec { p, ..*spec };
    for (axis, n) in [("nx", spec.nx), ("ny", spec.ny), ("nz", spec.nz)] {
        if n == 0 {
            return Err(Error::from(ParamError::ZeroExtent(axis)));
        }
    }
    let grid = PencilGrid::try_near_square(p)?;
    if p > spec.nx.min(spec.ny) {
        // Slabs cannot use more than min(Nx, Ny) ranks; no need to price.
        return Ok(Decomposition::Pencil(grid));
    }
    let slab = fft3_simulated(
        platform.clone(),
        spec,
        Variant::New,
        TuningParams::seed(&spec),
        false,
    )
    .time;
    let pencil = pencil_overlap_simulated_params(platform, spec, grid, &pencil_seed(&spec, grid));
    Ok(if slab <= pencil {
        Decomposition::Slab
    } else {
        Decomposition::Pencil(grid)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::model::umd_cluster;

    #[test]
    fn divisible_split_is_uniform() {
        let s = AxisSplit::new(256, 16);
        assert!(s.counts().iter().all(|&c| c == 16));
        assert_eq!(s.offset(5), 80);
        assert_eq!(s.max_count(), 16);
    }

    #[test]
    fn non_divisible_split_partitions_exactly() {
        for n in [7usize, 10, 100, 255, 257] {
            for p in [1usize, 2, 3, 5, 8, 16] {
                let s = AxisSplit::new(n, p);
                let total: usize = s.counts().iter().sum();
                assert_eq!(total, n, "n={n} p={p}");
                // Offsets are the prefix sums.
                let mut off = 0;
                for r in 0..p {
                    assert_eq!(s.offset(r), off);
                    off += s.count(r);
                }
                // Counts differ by at most one, larger first.
                let max = s.count(0);
                assert!(s.counts().iter().all(|&c| c == max || c + 1 == max));
            }
        }
    }

    #[test]
    fn owner_inverts_offsets() {
        let s = AxisSplit::new(17, 5); // counts 4,4,3,3,3
        for i in 0..17 {
            let r = s.owner(i);
            assert!(
                i >= s.offset(r) && i < s.offset(r) + s.count(r),
                "i={i} r={r}"
            );
        }
    }

    #[test]
    fn more_ranks_than_planes_gives_empty_slabs() {
        let s = AxisSplit::new(3, 5);
        assert_eq!(s.counts(), &[1, 1, 1, 0, 0]);
        assert_eq!(s.offset(4), 3);
    }

    #[test]
    fn decomp_builds_both_axes() {
        let d = Decomp::new(10, 20, 4);
        assert_eq!(d.x.counts(), &[3, 3, 2, 2]);
        assert_eq!(d.y.counts(), &[5, 5, 5, 5]);
    }

    #[test]
    fn auto_select_rejects_zero_ranks() {
        let spec = ProblemSpec::cube(64, 1);
        assert_eq!(
            auto_select(umd_cluster(), &spec, 0),
            Err(Error::InfeasibleParams(ParamError::ZeroRanks))
        );
    }

    #[test]
    fn auto_select_goes_pencil_past_the_slab_scaling_wall() {
        // p > min(Nx, Ny): slabs cannot even use the ranks.
        let spec = ProblemSpec::cube(64, 1);
        match auto_select(umd_cluster(), &spec, 128) {
            Ok(Decomposition::Pencil(g)) => assert_eq!(g.len(), 128),
            other => panic!("expected pencil past the wall, got {other:?}"),
        }
    }

    #[test]
    fn auto_select_prefers_slab_at_small_scale() {
        // One exchange beats two when both fit comfortably.
        let spec = ProblemSpec::cube(256, 1);
        assert_eq!(
            auto_select(umd_cluster(), &spec, 4),
            Ok(Decomposition::Slab)
        );
    }
}
