//! The overlap pipeline drivers — Algorithm 1 of the paper, factored out of
//! the two backends (real execution on `mpisim`, modeled execution on
//! `simnet`) so both run the *same* schedule.
//!
//! Two families of entry points run that schedule:
//!
//! * [`run_new`] / [`run_th`] — the original infallible drivers; any fault
//!   escalates to a panic.
//! * [`try_run_new`] / [`try_run_th`] — resilient drivers that climb a
//!   **degradation ladder** when a tile's all-to-all stalls: first boost the
//!   `MPI_Test` polling frequencies, then shrink the window `W`, then fall
//!   back to blocking (FFTW-style) exchanges, and only after the per-wait
//!   strike budget is spent surface a typed [`Error`]. The climb is reported
//!   in the returned [`Recovery`] and mirrored to the backend via
//!   [`OverlapEnv::on_degrade`] so traces show the recovery.

use crate::error::{Error, IntegrityStage};
use crate::trace::DegradeAction;
use std::time::Duration;

/// What a backend must provide for the tile pipeline to run over it.
///
/// Tiles are indexed `0..num_tiles()`. `inflight` always holds the tiles
/// whose all-to-all is outstanding, oldest first; the compute hooks poll
/// them per the backend's `F*` parameters.
pub trait OverlapEnv {
    /// Backend-specific request handle for one tile's all-to-all.
    type Req;

    /// Number of communication tiles `k = ⌈Nz/T⌉`.
    fn num_tiles(&self) -> usize;
    /// Window size `W` (0 disables overlap: the NEW-0/TH-0 variants).
    fn window(&self) -> usize;
    /// Steps 1–2: FFTz and Transpose (performed once, not per tile).
    fn fftz_transpose(&mut self);
    /// Algorithm 2: FFTy and Pack on `tile`, polling `inflight` `Fy`+`Fp`
    /// times. A poll may observe a fault on an in-flight exchange; the
    /// error names the tile it hit.
    fn ffty_pack(&mut self, tile: usize, inflight: &mut [(usize, Self::Req)]) -> Result<(), Error>;
    /// Posts the non-blocking all-to-all for `tile`.
    fn post_a2a(&mut self, tile: usize) -> Self::Req;
    /// `MPI_Wait` on `tile`'s all-to-all. On a fault (stall past the
    /// backend's watchdog timeout, exhausted retransmit budget) the request
    /// is handed back with the error so the driver can retry after a
    /// degradation step, or cancel it.
    fn wait(&mut self, tile: usize, req: Self::Req) -> Result<(), (Self::Req, Error)>;
    /// Algorithm 3: Unpack and FFTx on `tile`, polling `inflight` `Fu`+`Fx`
    /// times.
    fn unpack_fftx(
        &mut self,
        tile: usize,
        inflight: &mut [(usize, Self::Req)],
    ) -> Result<(), Error>;

    /// Degradation hook: raise the `F*` polling frequencies (called at most
    /// once per run, on the ladder's first rung). Default: no-op.
    fn boost_polls(&mut self) {}
    /// Degradation hook: grow the watchdog period before the next retry. A
    /// stall that survives a rung climb is usually contention (a straggler,
    /// a congested window), not a dead peer, so each strike grants the next
    /// attempt more room; a truly wedged exchange still surfaces within the
    /// (geometrically bounded) strike budget. Default: no-op.
    fn escalate_watchdog(&mut self) {}
    /// Degradation hook: the driver took `action` while waiting on `tile`.
    /// Backends surface this in their trace stream. Default: no-op.
    fn on_degrade(&mut self, _tile: usize, _action: DegradeAction) {}
    /// Disposes a request that will never be waited (the driver's error
    /// path). Backends reclaim whatever the exchange staged. Default: drop.
    fn cancel(&mut self, _tile: usize, _req: Self::Req) {}
    /// Recovery hook: rebuild and re-post `tile`'s exchange after an
    /// integrity check rejected the staged payload **before any peer saw
    /// it** (the Pack stage — a memory bit-flip between pack and post).
    /// Backends that keep the pristine transformed data re-pack from it and
    /// return the fresh request; the default `None` declines, surfacing the
    /// error instead. Only Pack-stage failures are retried: once a payload
    /// reaches the wire the collective has consumed a sequence number on
    /// every rank, and re-posting would desynchronise the communicator.
    fn retransmit(&mut self, _tile: usize) -> Option<Self::Req> {
        None
    }
    /// Inspection hook: `Some(stage)` when `req` is a poisoned placeholder
    /// the backend handed out *instead of posting* (its integrity check
    /// rejected the staged payload). The drivers consult this immediately
    /// after every post and heal Pack-stage poisons via
    /// [`OverlapEnv::retransmit`] on the spot — before any later collective
    /// is posted, which is what keeps every rank's collective sequence
    /// numbers in lockstep. Default: requests are never poisoned.
    fn post_poisoned(&self, _req: &Self::Req) -> Option<IntegrityStage> {
        None
    }
    /// Cooperative scheduling point, called by the drivers once per tile
    /// iteration. Backends with a runtime scheduler (mpisim's checked mode)
    /// hook this to release deferred message deliveries at deterministic
    /// points in the pipeline's program order; others leave the no-op
    /// default.
    fn sched_point(&mut self) {}
    /// Worker threads (`Th`) the backend's compute hooks spread their
    /// batched kernels over. Purely informational to the drivers — the
    /// hooks themselves do the spreading — but exposed here so harnesses
    /// can report the knob uniformly. Default: sequential.
    fn threads(&self) -> usize {
        1
    }
}

/// Stall-handling policy for the resilient drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    /// Watchdog timeout a backend's `wait` applies before reporting
    /// [`Error::Stalled`]. `None` disables the watchdog: waits block
    /// forever, as the legacy drivers did.
    pub stall_timeout: Option<Duration>,
    /// Multiplier applied to the `F*` polling frequencies by the ladder's
    /// first rung.
    pub poll_boost: u32,
    /// Stalls tolerated per wait before the driver gives up on it. Each
    /// strike grants the wait another watchdog period, doubled per strike
    /// (see [`OverlapEnv::escalate_watchdog`]), so a wait is bounded by
    /// `(2^(max_strikes + 1) − 1) · stall_timeout`.
    pub max_strikes: u32,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            stall_timeout: None,
            poll_boost: 4,
            max_strikes: 3,
        }
    }
}

impl Resilience {
    /// A policy with the watchdog armed at `timeout` and default ladder
    /// settings.
    pub fn with_timeout(timeout: Duration) -> Self {
        Resilience {
            stall_timeout: Some(timeout),
            ..Resilience::default()
        }
    }
}

/// What the resilient driver had to do to finish the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Watchdog firings observed (some may have resolved without a ladder
    /// climb once the ladder was already at its top rung).
    pub stalls_detected: u32,
    /// Ladder rungs climbed, in order: a prefix of
    /// `[BoostPolls, ShrinkWindow, Fallback]`.
    pub actions: Vec<DegradeAction>,
    /// `true` once the run abandoned overlap and finished with blocking
    /// exchanges.
    pub fell_back: bool,
    /// Silent corruptions caught at the Pack stage and healed transparently
    /// by re-packing and re-posting (each also appears in [`actions`] as a
    /// [`DegradeAction::Retransmit`]).
    ///
    /// [`actions`]: Recovery::actions
    pub corruptions_healed: u32,
}

impl Recovery {
    /// `true` when the run needed no degradation at all.
    pub fn clean(&self) -> bool {
        self.stalls_detected == 0
            && self.actions.is_empty()
            && !self.fell_back
            && self.corruptions_healed == 0
    }
}

/// Ladder state shared by the resilient drivers.
struct Ladder<'a> {
    res: &'a Resilience,
    recovery: Recovery,
    /// Effective window, shrunk by the ladder's second rung.
    w_eff: usize,
    /// Rungs climbed so far (0..=3).
    rung: usize,
}

impl<'a> Ladder<'a> {
    fn new(res: &'a Resilience, w: usize) -> Self {
        Ladder {
            res,
            recovery: Recovery::default(),
            w_eff: w,
            rung: 0,
        }
    }

    /// Waits on `tile`, absorbing up to `max_strikes` stalls by climbing
    /// the degradation ladder and retrying (each retry grants the backend's
    /// watchdog another period). A non-stall fault, or a stall past the
    /// strike budget, cancels the request and surfaces the error.
    fn wait_recover<E: OverlapEnv>(
        &mut self,
        env: &mut E,
        tile: usize,
        mut req: E::Req,
    ) -> Result<(), Error> {
        let mut strikes = 0;
        loop {
            match env.wait(tile, req) {
                Ok(()) => return Ok(()),
                Err((r, Error::Stalled { .. })) if strikes < self.res.max_strikes => {
                    strikes += 1;
                    self.recovery.stalls_detected += 1;
                    env.escalate_watchdog();
                    if self.rung < 3 {
                        let action = [
                            DegradeAction::BoostPolls,
                            DegradeAction::ShrinkWindow,
                            DegradeAction::Fallback,
                        ][self.rung];
                        self.rung += 1;
                        match action {
                            DegradeAction::BoostPolls => env.boost_polls(),
                            DegradeAction::ShrinkWindow => self.w_eff = (self.w_eff / 2).max(1),
                            DegradeAction::Fallback => self.recovery.fell_back = true,
                            // Retransmit is corruption healing, not a stall
                            // rung; it never appears in the climb array.
                            DegradeAction::Retransmit => unreachable!(),
                        }
                        env.on_degrade(tile, action);
                        self.recovery.actions.push(action);
                    }
                    req = r;
                }
                Err((r, e)) => {
                    env.cancel(tile, r);
                    return Err(e);
                }
            }
        }
    }

    /// Posts `tile`'s exchange, healing Pack-stage integrity rejections on
    /// the spot. A backend that rejects its own staged payload (resident
    /// hash mismatch — a memory bit-flip between pack and post) hands back
    /// a poisoned request instead of posting; since no peer saw anything
    /// and no sequence number was consumed, re-packing from the pristine
    /// transformed data and re-posting *immediately* — before any later
    /// collective — is transparent to the rest of the communicator. The
    /// retry budget is separate from the stall strikes: a flaky memory
    /// cell should not eat the watchdog's patience, and vice versa.
    /// Non-Pack poisons are never retried (the payload reached the wire or
    /// the in-place transforms destroyed the pristine data) and surface as
    /// [`Error::IntegrityFailed`].
    fn post_recover<E: OverlapEnv>(&mut self, env: &mut E, tile: usize) -> Result<E::Req, Error> {
        let mut req = env.post_a2a(tile);
        let mut retries = 0;
        while let Some(stage) = env.post_poisoned(&req) {
            env.cancel(tile, req);
            if stage != IntegrityStage::Pack || retries >= self.res.max_strikes {
                return Err(Error::IntegrityFailed { tile, stage });
            }
            retries += 1;
            match env.retransmit(tile) {
                Some(fresh) => {
                    env.on_degrade(tile, DegradeAction::Retransmit);
                    self.recovery.actions.push(DegradeAction::Retransmit);
                    self.recovery.corruptions_healed += 1;
                    req = fresh;
                }
                None => return Err(Error::IntegrityFailed { tile, stage }),
            }
        }
        Ok(req)
    }
}

/// Cancels everything still in flight (the drivers' error path) and returns
/// the error.
fn cancel_all<E: OverlapEnv>(
    env: &mut E,
    inflight: &mut Vec<(usize, E::Req)>,
    err: Error,
) -> Error {
    for (tile, req) in inflight.drain(..) {
        env.cancel(tile, req);
    }
    err
}

/// Runs the paper's full pipeline (Algorithm 1): all four compute steps
/// overlap with the windowed all-to-alls.
///
/// ```text
/// for i ← 0 to k + W − 1 do
///     if i < k  then FFTy and Pack on tile i
///     if i ≥ W  then MPI_Wait on tile (i − W)
///     if i < k  then MPI_Ialltoall on tile i
///     if i ≥ W  then Unpack and FFTx on tile (i − W)
/// ```
///
/// With `window() == 0` this degenerates to the paper's NEW-0: per tile,
/// post immediately followed by wait (lines 6–7 "replaced with
/// `MPI_Ialltoall` and `MPI_Wait` on tile i"), no polls.
///
/// # Panics
/// On any pipeline fault; use [`try_run_new`] for the typed error path.
pub fn run_new<E: OverlapEnv>(env: &mut E) {
    try_run_new(env, &Resilience::default())
        .unwrap_or_else(|e| panic!("overlap pipeline failed: {e}"));
}

/// [`run_new`] with stall recovery: on a detected stall the driver climbs
/// the degradation ladder (boost polls → shrink window → blocking fallback)
/// and keeps going; it returns what it had to do, or the fault that
/// exhausted the ladder. All in-flight requests are cancelled on the error
/// path — nothing leaks.
pub fn try_run_new<E: OverlapEnv>(env: &mut E, res: &Resilience) -> Result<Recovery, Error> {
    env.fftz_transpose();
    let k = env.num_tiles();
    let w = env.window();
    let mut ladder = Ladder::new(res, w);

    if w == 0 {
        for i in 0..k {
            env.sched_point();
            env.ffty_pack(i, &mut [])?;
            let req = ladder.post_recover(env, i)?;
            ladder.wait_recover(env, i, req)?;
            env.unpack_fftx(i, &mut [])?;
        }
        return Ok(ladder.recovery);
    }

    let mut inflight: Vec<(usize, E::Req)> = Vec::with_capacity(w);
    match drive_new(env, k, &mut ladder, &mut inflight) {
        Ok(()) => Ok(ladder.recovery),
        Err(e) => Err(cancel_all(env, &mut inflight, e)),
    }
}

/// The windowed NEW schedule, restructured around "how many waits does this
/// iteration owe" so the window can shrink mid-run. With a constant window
/// this emits exactly the legacy Algorithm-1 call sequence (pinned by the
/// tests below).
fn drive_new<E: OverlapEnv>(
    env: &mut E,
    k: usize,
    ladder: &mut Ladder<'_>,
    inflight: &mut Vec<(usize, E::Req)>,
) -> Result<(), Error> {
    for np in 0..k {
        env.sched_point();
        env.ffty_pack(np, inflight)?;
        if ladder.recovery.fell_back && inflight.is_empty() {
            // Fallback rung: blocking exchange per tile, no overlap.
            let req = ladder.post_recover(env, np)?;
            ladder.wait_recover(env, np, req)?;
            env.unpack_fftx(np, &mut [])?;
            continue;
        }
        // How many in-flight exchanges must complete before tile np's post
        // keeps the window within W. Zero through the fill phase; one per
        // iteration in steady state; more right after a window shrink.
        let need = (inflight.len() + 1).saturating_sub(ladder.w_eff.max(1));
        if need == 0 {
            let req = ladder.post_recover(env, np)?;
            inflight.push((np, req));
            continue;
        }
        // A shrunk window can owe more than one wait; drain the extras
        // first so the post below never raises concurrency past W.
        for _ in 1..need {
            let (tile, req) = inflight.remove(0);
            ladder.wait_recover(env, tile, req)?;
            env.unpack_fftx(tile, inflight)?;
        }
        let (tile, req) = inflight.remove(0);
        ladder.wait_recover(env, tile, req)?;
        let req_np = ladder.post_recover(env, np)?;
        inflight.push((np, req_np));
        env.unpack_fftx(tile, inflight)?;
        if ladder.recovery.fell_back {
            // The ladder topped out while this tile was in the window:
            // drain everything and let the remaining tiles go blocking.
            while !inflight.is_empty() {
                let (tile, req) = inflight.remove(0);
                ladder.wait_recover(env, tile, req)?;
                env.unpack_fftx(tile, inflight)?;
            }
        }
    }
    while !inflight.is_empty() {
        let (tile, req) = inflight.remove(0);
        ladder.wait_recover(env, tile, req)?;
        env.unpack_fftx(tile, inflight)?;
    }
    Ok(())
}

/// Runs the TH comparator's schedule (Hoefler et al. [18]): only FFTy and
/// Pack overlap with communication; Unpack and FFTx happen after the wait,
/// with no progression polls — the reason TH's Wait bar dwarfs NEW's in
/// Figure 8.
///
/// # Panics
/// On any pipeline fault; use [`try_run_th`] for the typed error path.
pub fn run_th<E: OverlapEnv>(env: &mut E) {
    try_run_th(env, &Resilience::default())
        .unwrap_or_else(|e| panic!("overlap pipeline failed: {e}"));
}

/// [`run_th`] with the same stall-recovery ladder as [`try_run_new`].
pub fn try_run_th<E: OverlapEnv>(env: &mut E, res: &Resilience) -> Result<Recovery, Error> {
    env.fftz_transpose();
    let k = env.num_tiles();
    let w = env.window();
    let mut ladder = Ladder::new(res, w);

    if w == 0 {
        for i in 0..k {
            env.sched_point();
            env.ffty_pack(i, &mut [])?;
            let req = ladder.post_recover(env, i)?;
            ladder.wait_recover(env, i, req)?;
            env.unpack_fftx(i, &mut [])?;
        }
        return Ok(ladder.recovery);
    }

    let mut inflight: Vec<(usize, E::Req)> = Vec::with_capacity(w);
    match drive_th(env, k, &mut ladder, &mut inflight) {
        Ok(()) => Ok(ladder.recovery),
        Err(e) => Err(cancel_all(env, &mut inflight, e)),
    }
}

/// The TH schedule: owed waits drain (wait + no-poll unpack) *before* the
/// iteration's post, matching the legacy loop's order.
fn drive_th<E: OverlapEnv>(
    env: &mut E,
    k: usize,
    ladder: &mut Ladder<'_>,
    inflight: &mut Vec<(usize, E::Req)>,
) -> Result<(), Error> {
    for np in 0..k {
        env.sched_point();
        env.ffty_pack(np, inflight)?;
        let need = if ladder.recovery.fell_back {
            inflight.len()
        } else {
            (inflight.len() + 1).saturating_sub(ladder.w_eff.max(1))
        };
        for _ in 0..need {
            let (tile, req) = inflight.remove(0);
            ladder.wait_recover(env, tile, req)?;
            env.unpack_fftx(tile, &mut [])?;
        }
        let req = ladder.post_recover(env, np)?;
        if ladder.recovery.fell_back {
            ladder.wait_recover(env, np, req)?;
            env.unpack_fftx(np, &mut [])?;
        } else {
            inflight.push((np, req));
        }
    }
    while !inflight.is_empty() {
        let (tile, req) = inflight.remove(0);
        ladder.wait_recover(env, tile, req)?;
        env.unpack_fftx(tile, &mut [])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted environment that records the call sequence and can be
    /// told to stall specific waits.
    struct Recorder {
        k: usize,
        w: usize,
        log: Vec<String>,
        next_req: usize,
        /// Outcomes to inject: each wait attempt pops the front; `None`
        /// (or an empty queue) means success.
        wait_script: Vec<Option<Error>>,
        cancelled: Vec<usize>,
        boosts: u32,
        /// Whether `retransmit` offers a fresh request or declines.
        can_retransmit: bool,
        /// Stages to poison successive requests with: each `post_a2a` /
        /// `retransmit` pops the front; empty = clean requests.
        poison_script: std::collections::VecDeque<IntegrityStage>,
        poisoned: std::collections::HashMap<usize, IntegrityStage>,
    }

    impl Recorder {
        fn new(k: usize, w: usize) -> Self {
            Recorder {
                k,
                w,
                log: Vec::new(),
                next_req: 0,
                wait_script: Vec::new(),
                cancelled: Vec::new(),
                boosts: 0,
                can_retransmit: true,
                poison_script: std::collections::VecDeque::new(),
                poisoned: std::collections::HashMap::new(),
            }
        }

        fn stalled(tile: usize) -> Error {
            Error::Stalled {
                tile,
                round: 1,
                peer: 0,
            }
        }

        fn fresh_req(&mut self) -> usize {
            self.next_req += 1;
            if let Some(stage) = self.poison_script.pop_front() {
                self.poisoned.insert(self.next_req, stage);
            }
            self.next_req
        }
    }

    impl OverlapEnv for Recorder {
        type Req = usize;
        fn num_tiles(&self) -> usize {
            self.k
        }
        fn window(&self) -> usize {
            self.w
        }
        fn fftz_transpose(&mut self) {
            self.log.push("zT".into());
        }
        fn ffty_pack(&mut self, tile: usize, inflight: &mut [(usize, usize)]) -> Result<(), Error> {
            self.log.push(format!("yP{tile}(w{})", inflight.len()));
            Ok(())
        }
        fn post_a2a(&mut self, tile: usize) -> usize {
            self.log.push(format!("A{tile}"));
            self.fresh_req()
        }
        fn wait(&mut self, tile: usize, req: usize) -> Result<(), (usize, Error)> {
            self.log.push(format!("W{tile}"));
            match self.wait_script.pop() {
                Some(Some(e)) => Err((req, e)),
                _ => Ok(()),
            }
        }
        fn unpack_fftx(
            &mut self,
            tile: usize,
            inflight: &mut [(usize, usize)],
        ) -> Result<(), Error> {
            self.log.push(format!("uX{tile}(w{})", inflight.len()));
            Ok(())
        }
        fn boost_polls(&mut self) {
            self.boosts += 1;
            self.log.push("boost".into());
        }
        fn on_degrade(&mut self, tile: usize, action: DegradeAction) {
            self.log.push(format!("D{tile}:{}", action.label()));
        }
        fn cancel(&mut self, tile: usize, _req: usize) {
            self.cancelled.push(tile);
            self.log.push(format!("C{tile}"));
        }
        fn retransmit(&mut self, tile: usize) -> Option<usize> {
            if !self.can_retransmit {
                return None;
            }
            self.log.push(format!("R{tile}"));
            Some(self.fresh_req())
        }
        fn post_poisoned(&self, req: &usize) -> Option<IntegrityStage> {
            self.poisoned.get(req).copied()
        }
    }

    #[test]
    fn new_schedule_matches_algorithm_1() {
        // k = 3 tiles, W = 2: figure 3's interleaving.
        let mut env = Recorder::new(3, 2);
        run_new(&mut env);
        assert_eq!(
            env.log,
            vec![
                "zT", "yP0(w0)", "A0", "yP1(w1)", "A1", "yP2(w2)", "W0", "A2", "uX0(w2)", "W1",
                "uX1(w1)", "W2", "uX2(w0)"
            ]
        );
    }

    #[test]
    fn new_with_window_zero_is_sequential_per_tile() {
        let mut env = Recorder::new(2, 0);
        run_new(&mut env);
        assert_eq!(
            env.log,
            vec!["zT", "yP0(w0)", "A0", "W0", "uX0(w0)", "yP1(w0)", "A1", "W1", "uX1(w0)"]
        );
    }

    #[test]
    fn th_does_not_poll_during_unpack() {
        let mut env = Recorder::new(3, 1);
        run_th(&mut env);
        // Every uX entry must report an empty window.
        for entry in env.log.iter().filter(|e| e.starts_with("uX")) {
            assert!(entry.ends_with("(w0)"), "TH polled during unpack: {entry}");
        }
        // But packs after the first do see in-flight tiles.
        assert!(env
            .log
            .iter()
            .any(|e| e.starts_with("yP") && e.ends_with("(w1)")));
    }

    #[test]
    fn every_tile_is_waited_exactly_once() {
        for (k, w) in [(1, 1), (4, 1), (4, 2), (4, 4), (5, 3), (8, 2)] {
            let mut env = Recorder::new(k, w);
            run_new(&mut env);
            for t in 0..k {
                let waits = env.log.iter().filter(|e| **e == format!("W{t}")).count();
                assert_eq!(waits, 1, "k={k} w={w} tile={t}");
                let posts = env.log.iter().filter(|e| **e == format!("A{t}")).count();
                assert_eq!(posts, 1);
            }
        }
    }

    #[test]
    fn window_never_exceeds_w() {
        for (k, w) in [(6, 1), (6, 2), (6, 3)] {
            let mut env = Recorder::new(k, w);
            run_new(&mut env);
            for e in &env.log {
                if let Some(pos) = e.find("(w") {
                    let n: usize = e[pos + 2..e.len() - 1].parse().unwrap();
                    assert!(n <= w, "k={k} w={w}: {e}");
                }
            }
        }
    }

    #[test]
    fn wait_precedes_unpack_for_same_tile() {
        let mut env = Recorder::new(5, 2);
        run_new(&mut env);
        for t in 0..5 {
            let wi = env.log.iter().position(|e| *e == format!("W{t}")).unwrap();
            let ui = env
                .log
                .iter()
                .position(|e| e.starts_with(&format!("uX{t}(")))
                .unwrap();
            assert!(wi < ui, "tile {t}: wait at {wi}, unpack at {ui}");
        }
    }

    #[test]
    fn th_matches_legacy_sequence() {
        let mut env = Recorder::new(3, 1);
        run_th(&mut env);
        assert_eq!(
            env.log,
            vec![
                "zT", "yP0(w0)", "A0", "yP1(w1)", "W0", "uX0(w0)", "A1", "yP2(w1)", "W1",
                "uX1(w0)", "A2", "W2", "uX2(w0)"
            ]
        );
    }

    #[test]
    fn clean_run_reports_clean_recovery() {
        let mut env = Recorder::new(4, 2);
        let rec = try_run_new(&mut env, &Resilience::default()).unwrap();
        assert!(rec.clean());
        assert_eq!(env.boosts, 0);
        assert!(env.cancelled.is_empty());
    }

    #[test]
    fn ladder_climbs_in_order_and_recovers() {
        // k=6, W=2; the first three waits each stall once, then succeed on
        // retry. The ladder must climb boost → shrink → fallback, every
        // tile must still be waited and unpacked exactly once, and the run
        // must report the climb.
        let mut env = Recorder::new(6, 2);
        // wait() pops from the back: build the script so attempts 1..3
        // (whichever waits they land on) stall once each, interleaved with
        // successes. Simplest deterministic shape: every first attempt of
        // the first three waited tiles stalls.
        // Script order is pop() (LIFO), so push in reverse attempt order:
        // [stall, ok, stall, ok, stall] consumed as: W? stall, retry ok,
        // next W stall, retry ok, next W stall, then default-ok forever.
        env.wait_script = vec![
            Some(Recorder::stalled(0)),
            None,
            Some(Recorder::stalled(0)),
            None,
            Some(Recorder::stalled(0)),
        ];
        let rec = try_run_new(&mut env, &Resilience::default()).unwrap();
        assert_eq!(
            rec.actions,
            vec![
                DegradeAction::BoostPolls,
                DegradeAction::ShrinkWindow,
                DegradeAction::Fallback
            ]
        );
        assert_eq!(rec.stalls_detected, 3);
        assert!(rec.fell_back);
        assert_eq!(env.boosts, 1);
        assert!(env.cancelled.is_empty());
        for t in 0..6 {
            let unpacks = env
                .log
                .iter()
                .filter(|e| e.starts_with(&format!("uX{t}(")))
                .count();
            assert_eq!(unpacks, 1, "tile {t} unpacked once: {:?}", env.log);
            let posts = env.log.iter().filter(|e| **e == format!("A{t}")).count();
            assert_eq!(posts, 1, "tile {t} posted once");
        }
        // After the fallback rung, later tiles run post → wait → unpack
        // with nothing else interleaved (blocking, no overlap).
        let a5 = env.log.iter().position(|e| *e == "A5").unwrap();
        assert_eq!(env.log[a5 + 1], "W5");
        assert!(env.log[a5 + 2].starts_with("uX5("));
    }

    #[test]
    fn exhausted_strikes_surface_the_error_and_cancel_inflight() {
        let mut env = Recorder::new(4, 2);
        // Every wait attempt stalls: the first waited tile (0) burns the
        // 3-strike budget and errors on the 4th attempt.
        env.wait_script = vec![Some(Recorder::stalled(0)); 16];
        let err = try_run_new(&mut env, &Resilience::default()).unwrap_err();
        assert!(matches!(err, Error::Stalled { .. }), "{err}");
        // The failed tile's request and the other in-flight request were
        // both cancelled — nothing leaks.
        assert_eq!(env.cancelled, vec![0, 1]);
    }

    #[test]
    fn non_stall_faults_do_not_climb_the_ladder() {
        let mut env = Recorder::new(3, 2);
        env.wait_script = vec![Some(Error::Dropped {
            tile: 0,
            round: 2,
            peer: 1,
        })];
        let err = try_run_new(&mut env, &Resilience::default()).unwrap_err();
        assert!(matches!(err, Error::Dropped { .. }));
        assert_eq!(env.boosts, 0, "dropped data is not a stall: no ladder");
        assert_eq!(env.cancelled, vec![0, 1]);
    }

    #[test]
    fn shrink_window_reduces_concurrency_for_later_tiles() {
        // k=8, W=4. Stall twice on the first wait: boost, then shrink to
        // W=2. Afterwards the window reported to ffty_pack must never
        // exceed 2 once the backlog drains.
        let mut env = Recorder::new(8, 4);
        env.wait_script = vec![Some(Recorder::stalled(0)), Some(Recorder::stalled(0))];
        let rec = try_run_new(&mut env, &Resilience::default()).unwrap();
        assert_eq!(
            rec.actions,
            vec![DegradeAction::BoostPolls, DegradeAction::ShrinkWindow]
        );
        assert!(!rec.fell_back);
        // Once the backlog drains, the window seen by later packs is the
        // shrunk W = 2, not the original 4.
        assert!(env.log.contains(&"yP6(w2)".to_string()), "{:?}", env.log);
        assert!(env.log.contains(&"yP7(w2)".to_string()), "{:?}", env.log);
        for t in 0..8 {
            let unpacks = env
                .log
                .iter()
                .filter(|e| e.starts_with(&format!("uX{t}(")))
                .count();
            assert_eq!(unpacks, 1, "tile {t}: {:?}", env.log);
        }
    }

    #[test]
    fn pack_corruption_heals_by_retransmit_at_the_post_point() {
        let mut env = Recorder::new(4, 2);
        // The first post comes back poisoned (staged payload rejected);
        // the driver must dispose it, ask for a retransmit *immediately*
        // (before any later post — sequence lockstep), and finish.
        env.poison_script.push_back(IntegrityStage::Pack);
        let rec = try_run_new(&mut env, &Resilience::default()).unwrap();
        assert_eq!(rec.corruptions_healed, 1);
        assert_eq!(rec.actions, vec![DegradeAction::Retransmit]);
        assert!(!rec.clean());
        assert_eq!(rec.stalls_detected, 0, "corruption is not a stall");
        assert_eq!(env.boosts, 0, "healing does not climb the stall ladder");
        // The retransmit happens straight after the poisoned post, before
        // tile 1 posts anything.
        let a0 = env.log.iter().position(|e| e == "A0").unwrap();
        let r0 = env.log.iter().position(|e| e == "R0").unwrap();
        let a1 = env.log.iter().position(|e| e == "A1").unwrap();
        assert!(a0 < r0 && r0 < a1, "{:?}", env.log);
        assert!(env.cancelled.contains(&0), "poisoned request was disposed");
        for t in 0..4 {
            let unpacks = env
                .log
                .iter()
                .filter(|e| e.starts_with(&format!("uX{t}(")))
                .count();
            assert_eq!(unpacks, 1, "tile {t}: {:?}", env.log);
        }
    }

    #[test]
    fn exhausted_retransmit_budget_surfaces_integrity_error() {
        let mut env = Recorder::new(3, 1);
        // Every post and every retransmit comes back poisoned: 3 retries
        // (max_strikes), then the 4th poison surfaces.
        env.poison_script = vec![IntegrityStage::Pack; 8].into();
        let err = try_run_new(&mut env, &Resilience::default()).unwrap_err();
        assert!(
            matches!(
                err,
                Error::IntegrityFailed {
                    stage: IntegrityStage::Pack,
                    ..
                }
            ),
            "{err}"
        );
        assert_eq!(
            env.log.iter().filter(|e| **e == "R0").count(),
            3,
            "retry budget is max_strikes: {:?}",
            env.log
        );
    }

    #[test]
    fn non_pack_integrity_failures_do_not_retry() {
        // A non-Pack poison means the damage is beyond a re-pack (the
        // pristine data itself failed its check): surface immediately
        // without consulting the retransmit hook. Wire-stage failures
        // arrive through `wait` instead — equally non-retried.
        for stage in [IntegrityStage::Ffty, IntegrityStage::Fftx] {
            let mut env = Recorder::new(3, 2);
            env.poison_script.push_back(stage);
            let err = try_run_new(&mut env, &Resilience::default()).unwrap_err();
            assert!(matches!(err, Error::IntegrityFailed { .. }), "{err}");
            assert!(
                !env.log.iter().any(|e| e.starts_with('R')),
                "{stage}: {:?}",
                env.log
            );
        }
        let mut env = Recorder::new(3, 2);
        env.wait_script = vec![Some(Error::IntegrityFailed {
            tile: 0,
            stage: IntegrityStage::Wire,
        })];
        let err = try_run_new(&mut env, &Resilience::default()).unwrap_err();
        assert!(matches!(err, Error::IntegrityFailed { .. }), "{err}");
        assert!(!env.log.iter().any(|e| e.starts_with('R')), "{:?}", env.log);
        assert!(env.cancelled.contains(&0), "failed wait request disposed");
    }

    #[test]
    fn declined_retransmit_surfaces_the_error() {
        let mut env = Recorder::new(3, 2);
        env.can_retransmit = false;
        env.poison_script.push_back(IntegrityStage::Pack);
        let err = try_run_new(&mut env, &Resilience::default()).unwrap_err();
        assert!(matches!(err, Error::IntegrityFailed { .. }), "{err}");
        // The poisoned request was still cancelled before declining.
        assert!(env.cancelled.contains(&0));
    }

    #[test]
    fn th_ladder_recovers_too() {
        let mut env = Recorder::new(5, 2);
        env.wait_script = vec![Some(Recorder::stalled(0)), None, Some(Recorder::stalled(0))];
        let rec = try_run_th(&mut env, &Resilience::default()).unwrap();
        assert_eq!(rec.stalls_detected, 2);
        for t in 0..5 {
            let unpacks = env
                .log
                .iter()
                .filter(|e| e.starts_with(&format!("uX{t}(")))
                .count();
            assert_eq!(unpacks, 1, "tile {t}: {:?}", env.log);
        }
    }
}
