//! The overlap pipeline drivers — Algorithm 1 of the paper, factored out of
//! the two backends (real execution on `mpisim`, modeled execution on
//! `simnet`) so both run the *same* schedule.

/// What a backend must provide for the tile pipeline to run over it.
///
/// Tiles are indexed `0..num_tiles()`. `inflight` always holds the tiles
/// whose all-to-all is outstanding, oldest first; the compute hooks poll
/// them per the backend's `F*` parameters.
pub trait OverlapEnv {
    /// Backend-specific request handle for one tile's all-to-all.
    type Req;

    /// Number of communication tiles `k = ⌈Nz/T⌉`.
    fn num_tiles(&self) -> usize;
    /// Window size `W` (0 disables overlap: the NEW-0/TH-0 variants).
    fn window(&self) -> usize;
    /// Steps 1–2: FFTz and Transpose (performed once, not per tile).
    fn fftz_transpose(&mut self);
    /// Algorithm 2: FFTy and Pack on `tile`, polling `inflight` `Fy`+`Fp`
    /// times.
    fn ffty_pack(&mut self, tile: usize, inflight: &mut [(usize, Self::Req)]);
    /// Posts the non-blocking all-to-all for `tile`.
    fn post_a2a(&mut self, tile: usize) -> Self::Req;
    /// `MPI_Wait` on `tile`'s all-to-all.
    fn wait(&mut self, tile: usize, req: Self::Req);
    /// Algorithm 3: Unpack and FFTx on `tile`, polling `inflight` `Fu`+`Fx`
    /// times.
    fn unpack_fftx(&mut self, tile: usize, inflight: &mut [(usize, Self::Req)]);
}

/// Runs the paper's full pipeline (Algorithm 1): all four compute steps
/// overlap with the windowed all-to-alls.
///
/// ```text
/// for i ← 0 to k + W − 1 do
///     if i < k  then FFTy and Pack on tile i
///     if i ≥ W  then MPI_Wait on tile (i − W)
///     if i < k  then MPI_Ialltoall on tile i
///     if i ≥ W  then Unpack and FFTx on tile (i − W)
/// ```
///
/// With `window() == 0` this degenerates to the paper's NEW-0: per tile,
/// post immediately followed by wait (lines 6–7 "replaced with
/// `MPI_Ialltoall` and `MPI_Wait` on tile i"), no polls.
pub fn run_new<E: OverlapEnv>(env: &mut E) {
    env.fftz_transpose();
    let k = env.num_tiles();
    let w = env.window();
    if w == 0 {
        for i in 0..k {
            env.ffty_pack(i, &mut []);
            let req = env.post_a2a(i);
            env.wait(i, req);
            env.unpack_fftx(i, &mut []);
        }
        return;
    }
    let mut inflight: Vec<(usize, E::Req)> = Vec::with_capacity(w);
    for i in 0..k + w {
        if i < k {
            env.ffty_pack(i, &mut inflight);
        }
        if i >= w {
            let (tile, req) = inflight.remove(0);
            debug_assert_eq!(tile, i - w, "window must complete in order");
            env.wait(tile, req);
        }
        if i < k {
            let req = env.post_a2a(i);
            inflight.push((i, req));
        }
        if i >= w {
            env.unpack_fftx(i - w, &mut inflight);
        }
    }
    debug_assert!(inflight.is_empty());
}

/// Runs the TH comparator's schedule (Hoefler et al. [18]): only FFTy and
/// Pack overlap with communication; Unpack and FFTx happen after the wait,
/// with no progression polls — the reason TH's Wait bar dwarfs NEW's in
/// Figure 8.
pub fn run_th<E: OverlapEnv>(env: &mut E) {
    env.fftz_transpose();
    let k = env.num_tiles();
    let w = env.window();
    if w == 0 {
        for i in 0..k {
            env.ffty_pack(i, &mut []);
            let req = env.post_a2a(i);
            env.wait(i, req);
            env.unpack_fftx(i, &mut []);
        }
        return;
    }
    let mut inflight: Vec<(usize, E::Req)> = Vec::with_capacity(w);
    for i in 0..k + w {
        if i < k {
            env.ffty_pack(i, &mut inflight);
        }
        if i >= w {
            let (tile, req) = inflight.remove(0);
            debug_assert_eq!(tile, i - w);
            env.wait(tile, req);
            // No polls during Unpack/FFTx: pass an empty in-flight view.
            env.unpack_fftx(tile, &mut []);
        }
        if i < k {
            let req = env.post_a2a(i);
            inflight.push((i, req));
        }
    }
    debug_assert!(inflight.is_empty());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted environment that records the call sequence.
    struct Recorder {
        k: usize,
        w: usize,
        log: Vec<String>,
        next_req: usize,
    }

    impl Recorder {
        fn new(k: usize, w: usize) -> Self {
            Recorder {
                k,
                w,
                log: Vec::new(),
                next_req: 0,
            }
        }
    }

    impl OverlapEnv for Recorder {
        type Req = usize;
        fn num_tiles(&self) -> usize {
            self.k
        }
        fn window(&self) -> usize {
            self.w
        }
        fn fftz_transpose(&mut self) {
            self.log.push("zT".into());
        }
        fn ffty_pack(&mut self, tile: usize, inflight: &mut [(usize, usize)]) {
            self.log.push(format!("yP{tile}(w{})", inflight.len()));
        }
        fn post_a2a(&mut self, tile: usize) -> usize {
            self.log.push(format!("A{tile}"));
            self.next_req += 1;
            self.next_req
        }
        fn wait(&mut self, tile: usize, _req: usize) {
            self.log.push(format!("W{tile}"));
        }
        fn unpack_fftx(&mut self, tile: usize, inflight: &mut [(usize, usize)]) {
            self.log.push(format!("uX{tile}(w{})", inflight.len()));
        }
    }

    #[test]
    fn new_schedule_matches_algorithm_1() {
        // k = 3 tiles, W = 2: figure 3's interleaving.
        let mut env = Recorder::new(3, 2);
        run_new(&mut env);
        assert_eq!(
            env.log,
            vec![
                "zT", "yP0(w0)", "A0", "yP1(w1)", "A1", "yP2(w2)", "W0", "A2", "uX0(w2)", "W1",
                "uX1(w1)", "W2", "uX2(w0)"
            ]
        );
    }

    #[test]
    fn new_with_window_zero_is_sequential_per_tile() {
        let mut env = Recorder::new(2, 0);
        run_new(&mut env);
        assert_eq!(
            env.log,
            vec!["zT", "yP0(w0)", "A0", "W0", "uX0(w0)", "yP1(w0)", "A1", "W1", "uX1(w0)"]
        );
    }

    #[test]
    fn th_does_not_poll_during_unpack() {
        let mut env = Recorder::new(3, 1);
        run_th(&mut env);
        // Every uX entry must report an empty window.
        for entry in env.log.iter().filter(|e| e.starts_with("uX")) {
            assert!(entry.ends_with("(w0)"), "TH polled during unpack: {entry}");
        }
        // But packs after the first do see in-flight tiles.
        assert!(env
            .log
            .iter()
            .any(|e| e.starts_with("yP") && e.ends_with("(w1)")));
    }

    #[test]
    fn every_tile_is_waited_exactly_once() {
        for (k, w) in [(1, 1), (4, 1), (4, 2), (4, 4), (5, 3), (8, 2)] {
            let mut env = Recorder::new(k, w);
            run_new(&mut env);
            for t in 0..k {
                let waits = env.log.iter().filter(|e| **e == format!("W{t}")).count();
                assert_eq!(waits, 1, "k={k} w={w} tile={t}");
                let posts = env.log.iter().filter(|e| **e == format!("A{t}")).count();
                assert_eq!(posts, 1);
            }
        }
    }

    #[test]
    fn window_never_exceeds_w() {
        for (k, w) in [(6, 1), (6, 2), (6, 3)] {
            let mut env = Recorder::new(k, w);
            run_new(&mut env);
            for e in &env.log {
                if let Some(pos) = e.find("(w") {
                    let n: usize = e[pos + 2..e.len() - 1].parse().unwrap();
                    assert!(n <= w, "k={k} w={w}: {e}");
                }
            }
        }
    }

    #[test]
    fn wait_precedes_unpack_for_same_tile() {
        let mut env = Recorder::new(5, 2);
        run_new(&mut env);
        for t in 0..5 {
            let wi = env.log.iter().position(|e| *e == format!("W{t}")).unwrap();
            let ui = env
                .log
                .iter()
                .position(|e| e.starts_with(&format!("uX{t}(")))
                .unwrap();
            assert!(wi < ui, "tile {t}: wait at {wi}, unpack at {ui}");
        }
    }
}
