//! 2-D (pencil) domain decomposition — the paper's §7 future work.
//!
//! §2.2 explains the trade-off: pencils scale to `N²` processes but need
//! *two* all-to-all exchanges with more complex patterns, so slabs can win
//! at moderate scale. This module provides the pencil substrate the future
//! work would build overlap into:
//!
//! * [`fft3_pencil`] — a real, verified pencil transform over `mpisim`
//!   (blocking exchanges within row/column subcommunicators);
//! * [`pencil_simulated`] — its cost model on `simnet`, used by the
//!   `decomp_crossover` bench to locate the slab-vs-pencil crossover.
//!
//! The process grid is `pr × pc` (`p = pr · pc`). Distributions:
//!
//! ```text
//! stage 0: (X_r, Y_c, Z_all)  x-y-z layout   → FFTz
//! row exchange (size pc):     z ↔ y
//! stage 1: (X_r, Y_all, Z_c)  x-z-y layout   → FFTy
//! column exchange (size pr):  y ↔ x
//! stage 2: (X_all, Y2_r, Z_c) y-z-x layout   → FFTx
//! ```

use crate::decomp::AxisSplit;
use crate::error::Error;
use crate::params::{ParamError, ProblemSpec};
use cfft::planner::Rigor;
use cfft::{Complex64, Direction, PlanCache};
use mpisim::Comm;
use simnet::model::ELEM_BYTES;
use simnet::{run_sim, Platform};

/// The pencil process grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PencilGrid {
    /// Rows (splits x before the exchanges, y after).
    pub pr: usize,
    /// Columns (splits y before the exchanges, z after).
    pub pc: usize,
}

impl PencilGrid {
    /// A near-square grid for `p` processes.
    pub fn near_square(p: usize) -> Self {
        let mut pr = (p as f64).sqrt() as usize;
        while pr > 1 && p % pr != 0 {
            pr -= 1;
        }
        PencilGrid {
            pr: pr.max(1),
            pc: p / pr.max(1),
        }
    }

    /// Total processes.
    pub fn len(&self) -> usize {
        self.pr * self.pc
    }

    /// `true` for the degenerate empty grid (never constructed).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(row, col)` of a linear rank.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.pc, rank % self.pc)
    }
}

/// Result of a pencil transform on one rank: the `(Y2_r, Z_c)` pencil of
/// the spectrum in `y-z-x` layout (x contiguous).
pub struct PencilOutput {
    /// Local data, `ny2l · nzl · nx` elements.
    pub data: Vec<Complex64>,
    /// This rank's y-extent after the second exchange.
    pub ny2l: usize,
    /// This rank's z-extent after the first exchange.
    pub nzl: usize,
}

/// Distributed 3-D FFT with 2-D (pencil) decomposition, blocking exchanges.
///
/// `input` is this rank's `(X_r, Y_c, Z_all)` block in local `x-y-z`
/// layout. Collective over `comm`; `grid.len()` must equal `comm.size()`.
///
/// # Panics
/// On a zero-extent axis; use [`try_fft3_pencil`] for the typed error path.
pub fn fft3_pencil(
    comm: &Comm,
    spec: ProblemSpec,
    grid: PencilGrid,
    dir: Direction,
    input: &[Complex64],
) -> PencilOutput {
    // Display keeps the "infeasible parameters: …" wording the panicking
    // entry points share.
    try_fft3_pencil(comm, spec, grid, dir, input).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`fft3_pencil`]: a zero-extent axis comes back as
/// [`Error::InfeasibleParams`] instead of silently planning a size-1
/// stand-in transform for an empty problem.
pub fn try_fft3_pencil(
    comm: &Comm,
    spec: ProblemSpec,
    grid: PencilGrid,
    dir: Direction,
    input: &[Complex64],
) -> Result<PencilOutput, Error> {
    assert_eq!(grid.len(), comm.size(), "grid must match communicator");
    assert_eq!(grid.len(), spec.p, "grid must match spec.p");
    for (axis, n) in [("nx", spec.nx), ("ny", spec.ny), ("nz", spec.nz)] {
        if n == 0 {
            return Err(Error::from(ParamError::ZeroExtent(axis)));
        }
    }
    let (row, col) = grid.coords(comm.rank());

    let xs = AxisSplit::new(spec.nx, grid.pr); // X_r
    let ys = AxisSplit::new(spec.ny, grid.pc); // Y_c
    let zs = AxisSplit::new(spec.nz, grid.pc); // Z_c
    let y2s = AxisSplit::new(spec.ny, grid.pr); // Y2_r

    let (nxl, nyc) = (xs.count(row), ys.count(col));
    let nzl = zs.count(col);
    let ny2l = y2s.count(row);
    assert_eq!(
        input.len(),
        nxl * nyc * spec.nz,
        "input must be the rank's pencil"
    );

    // Row communicator: same row, ranked by column. Column communicator:
    // same column, ranked by row.
    let row_comm = comm
        .split(row as i64, col as i64)
        .expect("non-negative color");
    let col_comm = comm
        .split((grid.pr + col) as i64, row as i64)
        .expect("non-negative color");

    // Shared plans: repeated pencil transforms of one geometry never replan.
    let cache = PlanCache::global();
    let plan_z = cache.plan(spec.nz, dir, Rigor::Estimate);
    let plan_y = cache.plan(spec.ny, dir, Rigor::Estimate);
    let plan_x = cache.plan(spec.nx, dir, Rigor::Estimate);
    let mut scratch = vec![
        Complex64::ZERO;
        plan_z
            .scratch_len()
            .max(plan_y.scratch_len())
            .max(plan_x.scratch_len())
    ];

    // ---- Stage 0: FFTz on contiguous z lines -----------------------------
    let mut a = input.to_vec();
    for line in 0..nxl * nyc {
        let s = line * spec.nz;
        plan_z.execute(&mut a[s..s + spec.nz], &mut scratch);
    }

    // ---- Row exchange: z ↔ y ---------------------------------------------
    // Send to row-peer j its z-range; receive every peer's y-range for ours.
    let send_counts: Vec<usize> = (0..grid.pc).map(|j| nxl * nyc * zs.count(j)).collect();
    let recv_counts: Vec<usize> = (0..grid.pc).map(|i| nxl * ys.count(i) * nzl).collect();
    let mut send = vec![Complex64::ZERO; send_counts.iter().sum()];
    {
        let mut off = 0;
        for j in 0..grid.pc {
            let (z0, zc) = (zs.offset(j), zs.count(j));
            for x in 0..nxl {
                for y in 0..nyc {
                    let src = (x * nyc + y) * spec.nz + z0;
                    send[off..off + zc].copy_from_slice(&a[src..src + zc]);
                    off += zc;
                }
            }
        }
    }
    let mut recv = vec![Complex64::ZERO; recv_counts.iter().sum()];
    row_comm.alltoallv(&send, &send_counts, &recv_counts, &mut recv);

    // Unpack to (nxl, nzl, ny) in x-z-y layout (y contiguous).
    let mut b = vec![Complex64::ZERO; nxl * nzl * spec.ny];
    {
        let mut off = 0;
        for i in 0..grid.pc {
            let (y0, yc) = (ys.offset(i), ys.count(i));
            for x in 0..nxl {
                for yl in 0..yc {
                    for zl in 0..nzl {
                        b[(x * nzl + zl) * spec.ny + y0 + yl] = recv[off];
                        off += 1;
                    }
                }
            }
        }
    }

    // ---- Stage 1: FFTy on contiguous y lines ------------------------------
    for line in 0..nxl * nzl {
        let s = line * spec.ny;
        plan_y.execute(&mut b[s..s + spec.ny], &mut scratch);
    }

    // ---- Column exchange: y ↔ x -------------------------------------------
    let send_counts: Vec<usize> = (0..grid.pr).map(|j| nxl * y2s.count(j) * nzl).collect();
    let recv_counts: Vec<usize> = (0..grid.pr).map(|i| xs.count(i) * ny2l * nzl).collect();
    let mut send = vec![Complex64::ZERO; send_counts.iter().sum()];
    {
        let mut off = 0;
        for j in 0..grid.pr {
            let (y0, yc) = (y2s.offset(j), y2s.count(j));
            for x in 0..nxl {
                for zl in 0..nzl {
                    let src = (x * nzl + zl) * spec.ny + y0;
                    send[off..off + yc].copy_from_slice(&b[src..src + yc]);
                    off += yc;
                }
            }
        }
    }
    let mut recv = vec![Complex64::ZERO; recv_counts.iter().sum()];
    col_comm.alltoallv(&send, &send_counts, &recv_counts, &mut recv);

    // Unpack to (ny2l, nzl, nx) in y-z-x layout (x contiguous).
    let mut cbuf = vec![Complex64::ZERO; ny2l * nzl * spec.nx];
    {
        let mut off = 0;
        for i in 0..grid.pr {
            let (x0, xc) = (xs.offset(i), xs.count(i));
            for xl in 0..xc {
                for zl in 0..nzl {
                    for yl in 0..ny2l {
                        cbuf[(yl * nzl + zl) * spec.nx + x0 + xl] = recv[off];
                        off += 1;
                    }
                }
            }
        }
    }

    // ---- Stage 2: FFTx on contiguous x lines ------------------------------
    for line in 0..ny2l * nzl {
        let s = line * spec.nx;
        plan_x.execute(&mut cbuf[s..s + spec.nx], &mut scratch);
    }

    Ok(PencilOutput {
        data: cbuf,
        ny2l,
        nzl,
    })
}

/// Simulated cost of the (blocking) pencil transform: three FFT sweeps,
/// two pack/exchange/unpack stages over `√p`-sized subgroups.
pub fn pencil_simulated(platform: Platform, spec: ProblemSpec, grid: PencilGrid) -> f64 {
    assert_eq!(grid.len(), spec.p);
    let times = run_sim(platform, spec.p, move |sim| {
        let m = sim.platform().machine.clone();
        let net = sim.platform().net.clone();
        let (pr, pc) = (grid.pr, grid.pc);
        let nxl = spec.nx.div_ceil(pr);
        let nyc = spec.ny.div_ceil(pc);
        let nzl = spec.nz.div_ceil(pc);
        let ny2l = spec.ny.div_ceil(pr);

        // FFTz + pack/unpack + row exchange.
        sim.compute(m.fft_batch(spec.nz, (nxl * nyc) as u64));
        let stage1_bytes = (nxl * nyc * spec.nz) as u64 * ELEM_BYTES;
        sim.compute(m.pack(stage1_bytes, m.subtile_cache_bytes, nzl as u64 * ELEM_BYTES));
        // Row exchange rendezvous is only among pc ranks, but the engine's
        // collectives are global; model the subgroup exchange as a global
        // rendezvous with the subgroup's transfer cost (symmetric rows run
        // in parallel on disjoint links).
        let per_peer = stage1_bytes / pc.max(1) as u64;
        let (_, _end) = sim.blocking_alltoall(0); // rendezvous
        sim.compute(net.blocking_duration(pc, per_peer).as_secs_f64());
        sim.compute(m.pack(
            stage1_bytes,
            m.subtile_cache_bytes,
            (spec.ny / pc.max(1)).max(1) as u64 * ELEM_BYTES,
        ));

        // FFTy + pack/unpack + column exchange.
        sim.compute(m.fft_batch(spec.ny, (nxl * nzl) as u64));
        let stage2_bytes = (nxl * spec.ny * nzl) as u64 * ELEM_BYTES;
        let per_peer = stage2_bytes / pr.max(1) as u64;
        sim.compute(m.pack(
            stage2_bytes,
            m.subtile_cache_bytes,
            (spec.ny / pr.max(1)).max(1) as u64 * ELEM_BYTES,
        ));
        let (_, _end) = sim.blocking_alltoall(0);
        sim.compute(net.blocking_duration(pr, per_peer).as_secs_f64());
        sim.compute(m.pack(
            stage2_bytes,
            m.subtile_cache_bytes,
            (spec.nx / pr.max(1)).max(1) as u64 * ELEM_BYTES,
        ));

        // FFTx.
        sim.compute(m.fft_batch(spec.nx, (ny2l * nzl) as u64));
        sim.now().as_secs_f64()
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Simulated cost of the pencil transform **with the paper's overlap
/// applied to both exchanges** — §7's main future-work item realised on
/// the model.
///
/// Stage 1 (z↔y within rows) tiles along x: each x-slice's FFTz/Pack
/// overlaps the previous slices' row exchanges; Unpack/FFTy overlap the
/// next ones. Stage 2 (y↔x within columns) tiles along z the same way,
/// ending in FFTx. `w` windows and `f` polls per phase mirror the slab
/// pipeline's `W`/`F*`.
pub fn pencil_overlap_simulated(
    platform: Platform,
    spec: ProblemSpec,
    grid: PencilGrid,
    w: usize,
    f: u32,
) -> f64 {
    assert_eq!(grid.len(), spec.p);
    assert!(w >= 1);
    let times = run_sim(platform, spec.p, move |sim| {
        let m = sim.platform().machine.clone();
        let (pr, pc) = (grid.pr, grid.pc);
        let nxl = spec.nx.div_ceil(pr).max(1);
        let nyc = spec.ny.div_ceil(pc).max(1);
        let nzl = spec.nz.div_ceil(pc).max(1);
        let ny2l = spec.ny.div_ceil(pr).max(1);
        let cache = m.subtile_cache_bytes;

        // ---- Stage 1: tiles along x, exchange within rows (size pc) ----
        let k1 = nxl.clamp(1, 16);
        let xt = nxl.div_ceil(k1); // x-planes per tile
        let tile_bytes = (xt * nyc * spec.nz) as u64 * ELEM_BYTES;
        let per_peer = tile_bytes / pc.max(1) as u64;
        let mut window: Vec<simnet::OpId> = Vec::new();
        let drain = |sim: &mut simnet::SimRank, window: &mut Vec<simnet::OpId>, keep: usize| {
            while window.len() > keep {
                let op = window.remove(0);
                sim.wait(op);
                // Unpack + FFTy of the drained tile.
                let unpack = m.pack(
                    tile_bytes,
                    cache,
                    (spec.ny / pc.max(1)).max(1) as u64 * ELEM_BYTES,
                );
                let ffty = m.fft_batch(spec.ny, (xt * nzl) as u64);
                sim.compute_with_polls(unpack + ffty, f, window);
            }
        };
        for _i in 0..k1 {
            let fftz = m.fft_batch(spec.nz, (xt * nyc) as u64);
            let pack = m.pack(tile_bytes, cache, nzl as u64 * ELEM_BYTES);
            sim.compute_with_polls(fftz + pack, f, &window);
            drain(sim, &mut window, w.saturating_sub(1));
            window.push(sim.post_alltoall_in_group(pc, per_peer));
        }
        drain(sim, &mut window, 0);

        // ---- Stage 2: tiles along z, exchange within columns (size pr) --
        let k2 = nzl.clamp(1, 16);
        let zt = nzl.div_ceil(k2);
        let tile_bytes = (nxl * spec.ny * zt) as u64 * ELEM_BYTES;
        let per_peer = tile_bytes / pr.max(1) as u64;
        let mut window: Vec<simnet::OpId> = Vec::new();
        let drain2 = |sim: &mut simnet::SimRank, window: &mut Vec<simnet::OpId>, keep: usize| {
            while window.len() > keep {
                let op = window.remove(0);
                sim.wait(op);
                let unpack = m.pack(
                    tile_bytes,
                    cache,
                    (spec.nx / pr.max(1)).max(1) as u64 * ELEM_BYTES,
                );
                let fftx = m.fft_batch(spec.nx, (ny2l * zt) as u64);
                sim.compute_with_polls(unpack + fftx, f, window);
            }
        };
        for _j in 0..k2 {
            let pack = m.pack(
                tile_bytes,
                cache,
                (spec.ny / pr.max(1)).max(1) as u64 * ELEM_BYTES,
            );
            sim.compute_with_polls(pack, f, &window);
            drain2(sim, &mut window, w.saturating_sub(1));
            window.push(sim.post_alltoall_in_group(pr, per_peer));
        }
        drain2(sim, &mut window, 0);

        sim.now().as_secs_f64()
    });
    times.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{fft3_serial, full_test_array, test_field};
    use simnet::model::umd_cluster;
    use std::sync::Arc;

    fn pencil_input(spec: &ProblemSpec, grid: PencilGrid, rank: usize) -> Vec<Complex64> {
        let (row, col) = grid.coords(rank);
        let xs = AxisSplit::new(spec.nx, grid.pr);
        let ys = AxisSplit::new(spec.ny, grid.pc);
        let mut v = Vec::new();
        for xl in 0..xs.count(row) {
            for yl in 0..ys.count(col) {
                for z in 0..spec.nz {
                    v.push(test_field(xs.offset(row) + xl, ys.offset(col) + yl, z));
                }
            }
        }
        v
    }

    fn check(spec: ProblemSpec, grid: PencilGrid) {
        let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
        fft3_serial(
            &mut reference,
            spec.nx,
            spec.ny,
            spec.nz,
            Direction::Forward,
        );
        let reference = Arc::new(reference);

        let errs = mpisim::run(spec.p, move |comm| {
            let input = pencil_input(&spec, grid, comm.rank());
            let out = fft3_pencil(&comm, spec, grid, Direction::Forward, &input);
            let (row, col) = grid.coords(comm.rank());
            let y2s = AxisSplit::new(spec.ny, grid.pr);
            let zsp = AxisSplit::new(spec.nz, grid.pc);
            let mut err = 0.0f64;
            for yl in 0..out.ny2l {
                for zl in 0..out.nzl {
                    for x in 0..spec.nx {
                        let got = out.data[(yl * out.nzl + zl) * spec.nx + x];
                        let want = reference
                            [(x * spec.ny + y2s.offset(row) + yl) * spec.nz + zsp.offset(col) + zl];
                        err = err.max((got - want).abs());
                    }
                }
            }
            err
        });
        for (r, e) in errs.iter().enumerate() {
            assert!(
                *e < 1e-9 * spec.len() as f64,
                "rank {r}: err {e} ({spec:?}, {grid:?})"
            );
        }
    }

    #[test]
    fn pencil_matches_serial_2x2() {
        check(ProblemSpec::cube(8, 4), PencilGrid { pr: 2, pc: 2 });
    }

    #[test]
    fn pencil_matches_serial_2x3() {
        check(
            ProblemSpec {
                nx: 8,
                ny: 12,
                nz: 6,
                p: 6,
            },
            PencilGrid { pr: 2, pc: 3 },
        );
    }

    #[test]
    fn pencil_matches_serial_non_divisible() {
        check(
            ProblemSpec {
                nx: 7,
                ny: 9,
                nz: 10,
                p: 6,
            },
            PencilGrid { pr: 3, pc: 2 },
        );
    }

    #[test]
    fn pencil_degenerate_1xp_equals_slab_distribution() {
        // pr = 1 reduces to a slab-like decomposition on z/y only.
        check(ProblemSpec::cube(8, 4), PencilGrid { pr: 1, pc: 4 });
        check(ProblemSpec::cube(8, 4), PencilGrid { pr: 4, pc: 1 });
    }

    #[test]
    fn near_square_grids() {
        assert_eq!(PencilGrid::near_square(16), PencilGrid { pr: 4, pc: 4 });
        assert_eq!(PencilGrid::near_square(12), PencilGrid { pr: 3, pc: 4 });
        assert_eq!(PencilGrid::near_square(7), PencilGrid { pr: 1, pc: 7 });
    }

    #[test]
    fn simulated_pencil_runs_and_is_positive() {
        let spec = ProblemSpec::cube(256, 16);
        let t = pencil_simulated(umd_cluster(), spec, PencilGrid::near_square(16));
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn overlapped_pencil_beats_blocking_pencil() {
        // §7 realised: applying the overlap method to the 2-D decomposition
        // hides exchange time on the communication-bound UMD model.
        let spec = ProblemSpec::cube(256, 16);
        let grid = PencilGrid::near_square(16);
        let blocking = pencil_simulated(umd_cluster(), spec, grid);
        let overlapped = pencil_overlap_simulated(umd_cluster(), spec, grid, 2, 16);
        assert!(
            overlapped < blocking,
            "overlap must help the pencil path too: {overlapped:.3} vs {blocking:.3}"
        );
    }

    #[test]
    fn overlapped_pencil_is_deterministic() {
        let spec = ProblemSpec::cube(128, 8);
        let grid = PencilGrid::near_square(8);
        let a = pencil_overlap_simulated(umd_cluster(), spec, grid, 2, 8);
        let b = pencil_overlap_simulated(umd_cluster(), spec, grid, 2, 8);
        assert_eq!(a, b);
    }
}
