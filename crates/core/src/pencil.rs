//! 2-D (pencil) domain decomposition — the paper's §7 future work, realised.
//!
//! §2.2 explains the trade-off: pencils scale to `N²` processes but need
//! *two* all-to-all exchanges with more complex patterns, so slabs can win
//! at moderate scale. This module provides both pencil paths:
//!
//! * [`fft3_pencil`] — the blocking reference transform over `mpisim`
//!   (one `alltoallv` per exchange within row/column subcommunicators);
//! * [`fft3_pencil_overlapped`] / [`try_fft3_pencil_overlapped`] — the
//!   paper's tile-window overlap applied to **both** pencil exchanges,
//!   driven by the same resilient pipeline ([`crate::pipeline::try_run_new`])
//!   as the slab backend, with the degradation ladder, tracing, and
//!   persistent-plan reuse via [`PencilSession`];
//! * [`pencil_simulated`] / [`pencil_overlap_simulated`] — their cost
//!   models on `simnet`, used by the `decomp_crossover` bench and by
//!   [`crate::decomp::auto_select`] to locate the slab-vs-pencil crossover.
//!
//! The process grid is `pr × pc` (`p = pr · pc`). Distributions:
//!
//! ```text
//! stage 0: (X_r, Y_c, Z_all)  x-y-z layout   → FFTz
//! row exchange (size pc):     z ↔ y
//! stage 1: (X_r, Y_all, Z_c)  x-z-y layout   → FFTy
//! column exchange (size pr):  y ↔ x
//! stage 2: (X_all, Y2_r, Z_c) y-z-x layout   → FFTx
//! ```
//!
//! The overlapped path tiles stage 1 along local x (FFTz + Pack on one
//! x-slice overlap the previous slices' row exchanges; Unpack + FFTy
//! overlap the next ones) and stage 2 along local z the same way, ending
//! in FFTx. Every member of a row subcommunicator shares `nxl` (and every
//! column member shares `nzl`), so the tile partitions — and therefore the
//! collective call sequences — agree across each subgroup by construction.

use crate::decomp::AxisSplit;
use crate::error::Error;
use crate::params::{ParamError, ProblemSpec, TuningParams};
use crate::pipeline::{try_run_new, OverlapEnv, Recovery, Resilience};
use crate::real_env::coll_to_error;
use crate::serial::test_field;
use crate::trace::{DegradeAction, EventKind, NoopRecorder, Recorder, TraceEvent};
use crate::xplan::{TileExchange, TransformPlanCache};
use cfft::planner::{Plan1d, Rigor};
use cfft::{Complex64, Direction, PlanCache};
use mpisim::{CollError, Comm, IAlltoall, PersistentAlltoall};
use simnet::model::ELEM_BYTES;
use simnet::{run_sim, Platform};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The pencil process grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PencilGrid {
    /// Rows (splits x before the exchanges, y after).
    pub pr: usize,
    /// Columns (splits y before the exchanges, z after).
    pub pc: usize,
}

impl PencilGrid {
    /// A near-square grid for `p` processes: the largest divisor
    /// `pr ≤ √p`, paired with `pc = p / pr` (so `pr ≤ pc` always).
    ///
    /// # Panics
    /// On `p = 0`; use [`PencilGrid::try_near_square`] for the typed error.
    pub fn near_square(p: usize) -> Self {
        Self::try_near_square(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PencilGrid::near_square`]: `p = 0` comes back as
    /// [`Error::InfeasibleParams`]`(`[`ParamError::ZeroRanks`]`)` instead of
    /// silently building the empty `1×0` grid (whose `coords` divides by
    /// zero).
    pub fn try_near_square(p: usize) -> Result<Self, Error> {
        if p == 0 {
            return Err(ParamError::ZeroRanks.into());
        }
        let mut pr = (p as f64).sqrt() as usize;
        while pr > 1 && p % pr != 0 {
            pr -= 1;
        }
        let pr = pr.max(1);
        Ok(PencilGrid { pr, pc: p / pr })
    }

    /// Every grid shape covering exactly `p` ranks: one entry per divisor
    /// `pr` of `p`, ordered by `pr`. The tuner's grid-shape dimension
    /// indexes into this list. Empty for `p = 0`.
    pub fn divisor_pairs(p: usize) -> Vec<PencilGrid> {
        (1..=p)
            .filter(|pr| p % pr == 0)
            .map(|pr| PencilGrid { pr, pc: p / pr })
            .collect()
    }

    /// Total processes.
    pub fn len(&self) -> usize {
        self.pr * self.pc
    }

    /// `true` for the degenerate empty grid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks the grid covers exactly `expected` ranks; the empty grid
    /// never validates (even against `expected = 0`), so a validated grid
    /// always has `pc ≥ 1` and [`PencilGrid::coords`] cannot divide by
    /// zero.
    pub fn validate(&self, expected: usize) -> Result<(), Error> {
        if self.is_empty() || self.len() != expected {
            return Err(Error::GridMismatch {
                pr: self.pr,
                pc: self.pc,
                expected,
            });
        }
        Ok(())
    }

    /// `(row, col)` of a linear rank. Callers must [`validate`] the grid
    /// first; the empty grid has `pc = 0` and no coordinates.
    ///
    /// [`validate`]: PencilGrid::validate
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.pc, rank % self.pc)
    }
}

/// Result of a pencil transform on one rank: the `(Y2_r, Z_c)` pencil of
/// the spectrum in `y-z-x` layout (x contiguous).
pub struct PencilOutput {
    /// Local data, `ny2l · nzl · nx` elements.
    pub data: Vec<Complex64>,
    /// This rank's y-extent after the second exchange.
    pub ny2l: usize,
    /// This rank's z-extent after the first exchange.
    pub nzl: usize,
}

/// Per-rank pencil decomposition geometry, shared by the blocking and
/// overlapped paths.
#[derive(Debug, Clone)]
struct PencilDims {
    /// X split across rows (input distribution).
    xs: AxisSplit,
    /// Y split across columns (input distribution).
    ys: AxisSplit,
    /// Z split across columns (after the row exchange).
    zs: AxisSplit,
    /// Y split across rows (after the column exchange).
    y2s: AxisSplit,
    row: usize,
    col: usize,
    nxl: usize,
    nyc: usize,
    nzl: usize,
    ny2l: usize,
}

impl PencilDims {
    fn new(spec: &ProblemSpec, grid: PencilGrid, rank: usize) -> Self {
        let (row, col) = grid.coords(rank);
        let xs = AxisSplit::new(spec.nx, grid.pr); // X_r
        let ys = AxisSplit::new(spec.ny, grid.pc); // Y_c
        let zs = AxisSplit::new(spec.nz, grid.pc); // Z_c
        let y2s = AxisSplit::new(spec.ny, grid.pr); // Y2_r
        let (nxl, nyc) = (xs.count(row), ys.count(col));
        let nzl = zs.count(col);
        let ny2l = y2s.count(row);
        PencilDims {
            xs,
            ys,
            zs,
            y2s,
            row,
            col,
            nxl,
            nyc,
            nzl,
            ny2l,
        }
    }
}

/// Row communicator (same row, ranked by column) and column communicator
/// (same column, ranked by row). Collective over `comm`; the grid must
/// already be validated against `comm.size()`.
fn split_pencil(comm: &Comm, grid: PencilGrid) -> (Comm, Comm) {
    let (row, col) = grid.coords(comm.rank());
    let row_comm = comm
        .split(row as i64, col as i64)
        .expect("non-negative color");
    let col_comm = comm
        .split((grid.pr + col) as i64, row as i64)
        .expect("non-negative color");
    (row_comm, col_comm)
}

/// Distributed 3-D FFT with 2-D (pencil) decomposition, blocking exchanges.
///
/// `input` is this rank's `(X_r, Y_c, Z_all)` block in local `x-y-z`
/// layout. Collective over `comm`; `grid.len()` must equal `comm.size()`.
///
/// # Panics
/// On a zero-extent axis or a mis-sized grid; use [`try_fft3_pencil`] for
/// the typed error path.
pub fn fft3_pencil(
    comm: &Comm,
    spec: ProblemSpec,
    grid: PencilGrid,
    dir: Direction,
    input: &[Complex64],
) -> PencilOutput {
    // Display keeps the "infeasible parameters: …" wording the panicking
    // entry points share.
    try_fft3_pencil(comm, spec, grid, dir, input).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`fft3_pencil`]: a zero-extent axis comes back as
/// [`Error::InfeasibleParams`], a grid that disagrees with the
/// communicator or `spec.p` as [`Error::GridMismatch`] — never a panic
/// from inside a collective.
pub fn try_fft3_pencil(
    comm: &Comm,
    spec: ProblemSpec,
    grid: PencilGrid,
    dir: Direction,
    input: &[Complex64],
) -> Result<PencilOutput, Error> {
    grid.validate(comm.size())?;
    grid.validate(spec.p)?;
    for (axis, n) in [("nx", spec.nx), ("ny", spec.ny), ("nz", spec.nz)] {
        if n == 0 {
            return Err(Error::from(ParamError::ZeroExtent(axis)));
        }
    }
    let d = PencilDims::new(&spec, grid, comm.rank());
    assert_eq!(
        input.len(),
        d.nxl * d.nyc * spec.nz,
        "input must be the rank's pencil"
    );

    let (row_comm, col_comm) = split_pencil(comm, grid);

    // Shared plans: repeated pencil transforms of one geometry never replan.
    let cache = PlanCache::global();
    let plan_z = cache.plan(spec.nz, dir, Rigor::Estimate);
    let plan_y = cache.plan(spec.ny, dir, Rigor::Estimate);
    let plan_x = cache.plan(spec.nx, dir, Rigor::Estimate);
    let mut scratch = vec![
        Complex64::ZERO;
        plan_z
            .scratch_len()
            .max(plan_y.scratch_len())
            .max(plan_x.scratch_len())
    ];

    // ---- Stage 0: FFTz on contiguous z lines -----------------------------
    let mut a = input.to_vec();
    for line in 0..d.nxl * d.nyc {
        let s = line * spec.nz;
        plan_z.execute(&mut a[s..s + spec.nz], &mut scratch);
    }

    // ---- Row exchange: z ↔ y ---------------------------------------------
    // Send to row-peer j its z-range; receive every peer's y-range for ours.
    let send_counts: Vec<usize> = (0..grid.pc)
        .map(|j| d.nxl * d.nyc * d.zs.count(j))
        .collect();
    let recv_counts: Vec<usize> = (0..grid.pc)
        .map(|i| d.nxl * d.ys.count(i) * d.nzl)
        .collect();
    let mut send = vec![Complex64::ZERO; send_counts.iter().sum()];
    {
        let mut off = 0;
        for j in 0..grid.pc {
            let (z0, zc) = (d.zs.offset(j), d.zs.count(j));
            for x in 0..d.nxl {
                for y in 0..d.nyc {
                    let src = (x * d.nyc + y) * spec.nz + z0;
                    send[off..off + zc].copy_from_slice(&a[src..src + zc]);
                    off += zc;
                }
            }
        }
    }
    let mut recv = vec![Complex64::ZERO; recv_counts.iter().sum()];
    row_comm.alltoallv(&send, &send_counts, &recv_counts, &mut recv);

    // Unpack to (nxl, nzl, ny) in x-z-y layout (y contiguous).
    let mut b = vec![Complex64::ZERO; d.nxl * d.nzl * spec.ny];
    {
        let mut off = 0;
        for i in 0..grid.pc {
            let (y0, yc) = (d.ys.offset(i), d.ys.count(i));
            for x in 0..d.nxl {
                for yl in 0..yc {
                    for zl in 0..d.nzl {
                        b[(x * d.nzl + zl) * spec.ny + y0 + yl] = recv[off];
                        off += 1;
                    }
                }
            }
        }
    }

    // ---- Stage 1: FFTy on contiguous y lines ------------------------------
    for line in 0..d.nxl * d.nzl {
        let s = line * spec.ny;
        plan_y.execute(&mut b[s..s + spec.ny], &mut scratch);
    }

    // ---- Column exchange: y ↔ x -------------------------------------------
    let send_counts: Vec<usize> = (0..grid.pr)
        .map(|j| d.nxl * d.y2s.count(j) * d.nzl)
        .collect();
    let recv_counts: Vec<usize> = (0..grid.pr)
        .map(|i| d.xs.count(i) * d.ny2l * d.nzl)
        .collect();
    let mut send = vec![Complex64::ZERO; send_counts.iter().sum()];
    {
        let mut off = 0;
        for j in 0..grid.pr {
            let (y0, yc) = (d.y2s.offset(j), d.y2s.count(j));
            for x in 0..d.nxl {
                for zl in 0..d.nzl {
                    let src = (x * d.nzl + zl) * spec.ny + y0;
                    send[off..off + yc].copy_from_slice(&b[src..src + yc]);
                    off += yc;
                }
            }
        }
    }
    let mut recv = vec![Complex64::ZERO; recv_counts.iter().sum()];
    col_comm.alltoallv(&send, &send_counts, &recv_counts, &mut recv);

    // Unpack to (ny2l, nzl, nx) in y-z-x layout (x contiguous).
    let mut cbuf = vec![Complex64::ZERO; d.ny2l * d.nzl * spec.nx];
    {
        let mut off = 0;
        for i in 0..grid.pr {
            let (x0, xc) = (d.xs.offset(i), d.xs.count(i));
            for xl in 0..xc {
                for zl in 0..d.nzl {
                    for yl in 0..d.ny2l {
                        cbuf[(yl * d.nzl + zl) * spec.nx + x0 + xl] = recv[off];
                        off += 1;
                    }
                }
            }
        }
    }

    // ---- Stage 2: FFTx on contiguous x lines ------------------------------
    for line in 0..d.ny2l * d.nzl {
        let s = line * spec.nx;
        plan_x.execute(&mut cbuf[s..s + spec.nx], &mut scratch);
    }

    Ok(PencilOutput {
        data: cbuf,
        ny2l: d.ny2l,
        nzl: d.nzl,
    })
}

// ---------------------------------------------------------------------------
// Overlapped backend
// ---------------------------------------------------------------------------

/// Persistent exchange plans for one pencil stage, one slot per tile.
type TilePlans = Vec<Option<PersistentAlltoall<Complex64>>>;

/// Request handle for one pencil tile's subcommunicator all-to-all.
enum PencilReq {
    /// A freshly posted `ialltoallv`.
    AdHoc(IAlltoall<Complex64>),
    /// An execution of the tile's persistent plan; the handle is the tile
    /// index (the execution lives inside the plan).
    Persistent(usize),
}

/// Which exchange a [`StageEnv`] drives.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StageKind {
    /// Stage 1: z ↔ y within the row subcommunicator, tiled along local x.
    /// "Pre" compute is FFTz + Pack; "post" compute is Unpack + FFTy.
    Row,
    /// Stage 2: y ↔ x within the column subcommunicator, tiled along local
    /// z. "Pre" compute is Pack; "post" compute is Unpack + FFTx.
    Col,
}

/// One pencil exchange as an [`OverlapEnv`], so
/// [`crate::pipeline::try_run_new`] drives it with the same windowed
/// schedule — and the same degradation ladder — as the slab backend. Two
/// instances run per transform (Row then Col); the second numbers its
/// tiles after the first (`tile_base`) so errors, traces, and recovery
/// actions name globally unique tiles.
struct StageEnv<'a, R: Recorder> {
    comm: &'a Comm,
    kind: StageKind,
    spec: ProblemSpec,
    dims: &'a PencilDims,
    tiles: &'a [Arc<TileExchange>],
    /// Planes per tile along the tiled axis (x for Row, z for Col).
    tsize: usize,
    /// Extent of the tiled axis (`nxl` for Row, `nzl` for Col).
    extent: usize,
    w: usize,
    /// Polls during the pre-exchange compute of each tile.
    f_pre: u32,
    /// Polls during the post-exchange compute of each tile.
    f_post: u32,
    /// Poll multiplier; raised by the ladder's first rung.
    boost: u32,
    poll_boost: u32,
    stall_timeout: Option<Duration>,
    src: &'a mut Vec<Complex64>,
    dst: &'a mut Vec<Complex64>,
    /// FFT applied before packing (FFTz for Row; none for Col, whose input
    /// was already transformed by the Row stage's post-compute).
    plan_pre: Option<Arc<Plan1d>>,
    /// FFT applied after unpacking (FFTy for Row, FFTx for Col).
    plan_post: Arc<Plan1d>,
    scratch: &'a mut Vec<Complex64>,
    /// Packed send buffers awaiting their post.
    staged: Vec<Option<Vec<Complex64>>>,
    /// Completed receive buffers awaiting their unpack; the flag marks a
    /// buffer borrowed from a persistent plan (returned via
    /// `restore_recv` once unpacked).
    arrived: Vec<Option<(Vec<Complex64>, bool)>>,
    plans: Option<&'a mut TilePlans>,
    recorder: &'a mut R,
    epoch: Instant,
    tile_base: usize,
    threads_n: usize,
    /// Exchange setups this stage performed: one per ad-hoc post, one per
    /// persistent-plan init (plan reuse does not count).
    setups: u64,
}

impl<R: Recorder> StageEnv<'_, R> {
    fn record_span(&mut self, t0: Instant, t1: Instant, kind: EventKind) {
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent {
                start: (t0 - self.epoch).as_secs_f64(),
                end: (t1 - self.epoch).as_secs_f64(),
                kind,
            });
        }
    }

    /// `(start, count)` of `tile`'s plane range along the tiled axis.
    fn tile_range(&self, tile: usize) -> (usize, usize) {
        let start = tile * self.tsize;
        (start, self.tsize.min(self.extent - start))
    }

    fn try_test_req(&mut self, req: &mut PencilReq) -> Result<bool, CollError> {
        match req {
            PencilReq::AdHoc(r) => r.try_test(self.comm),
            PencilReq::Persistent(pt) => self
                .plans
                .as_deref_mut()
                .and_then(|p| p[*pt].as_mut())
                .expect("in-flight persistent execution without its plan")
                .try_test(self.comm),
        }
    }

    /// Polls every in-flight exchange `n` times, surfacing the first fault
    /// a poll observes (named after the tile it hit).
    fn poll(&mut self, n: u32, inflight: &mut [(usize, PencilReq)]) -> Result<(), Error> {
        if inflight.is_empty() {
            return Ok(());
        }
        for _ in 0..n {
            for (gt, req) in inflight.iter_mut() {
                let t0 = Instant::now();
                let result = self.try_test_req(req);
                let t1 = Instant::now();
                if self.recorder.enabled() {
                    let completed = matches!(result, Ok(true));
                    self.record_span(
                        t0,
                        t1,
                        EventKind::Test {
                            tile: *gt,
                            completed,
                        },
                    );
                }
                result.map_err(|e| coll_to_error(*gt, e))?;
            }
        }
        Ok(())
    }
}

impl<R: Recorder> OverlapEnv for StageEnv<'_, R> {
    type Req = PencilReq;

    fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    fn window(&self) -> usize {
        self.w
    }

    fn fftz_transpose(&mut self) {
        // The pencil stages have no upfront whole-slab compute: the Row
        // stage's FFTz runs per tile inside `ffty_pack` — that is what the
        // first exchange overlaps with.
    }

    fn ffty_pack(&mut self, tile: usize, inflight: &mut [(usize, Self::Req)]) -> Result<(), Error> {
        let gt = self.tile_base + tile;
        let (start, cnt) = self.tile_range(tile);
        let xg = self.tiles[tile].clone();
        let mut send = vec![Complex64::ZERO; xg.total_send];
        match self.kind {
            StageKind::Row => {
                let (nz, nyc) = (self.spec.nz, self.dims.nyc);
                if cnt > 0 && nyc > 0 {
                    let plan = self.plan_pre.clone().expect("row stage has a z-plan");
                    let t0 = Instant::now();
                    for x in start..start + cnt {
                        for y in 0..nyc {
                            let s = (x * nyc + y) * nz;
                            plan.execute(&mut self.src[s..s + nz], self.scratch);
                        }
                    }
                    let t1 = Instant::now();
                    self.record_span(t0, t1, EventKind::Fftz);
                }
                let t0 = Instant::now();
                let mut off = 0;
                for j in 0..xg.send_counts.len() {
                    let (z0, zc) = (self.dims.zs.offset(j), self.dims.zs.count(j));
                    for x in start..start + cnt {
                        for y in 0..nyc {
                            let s = (x * nyc + y) * nz + z0;
                            send[off..off + zc].copy_from_slice(&self.src[s..s + zc]);
                            off += zc;
                        }
                    }
                }
                let t1 = Instant::now();
                self.record_span(
                    t0,
                    t1,
                    EventKind::Pack {
                        tile: gt,
                        subtile: 0,
                    },
                );
            }
            StageKind::Col => {
                let (ny, nxl, nzl) = (self.spec.ny, self.dims.nxl, self.dims.nzl);
                let t0 = Instant::now();
                let mut off = 0;
                for j in 0..xg.send_counts.len() {
                    let (y0, yc) = (self.dims.y2s.offset(j), self.dims.y2s.count(j));
                    for x in 0..nxl {
                        for zl in start..start + cnt {
                            let s = (x * nzl + zl) * ny + y0;
                            send[off..off + yc].copy_from_slice(&self.src[s..s + yc]);
                            off += yc;
                        }
                    }
                }
                let t1 = Instant::now();
                self.record_span(
                    t0,
                    t1,
                    EventKind::Pack {
                        tile: gt,
                        subtile: 0,
                    },
                );
            }
        }
        self.staged[tile] = Some(send);
        self.poll(self.f_pre.saturating_mul(self.boost), inflight)
    }

    fn post_a2a(&mut self, tile: usize) -> Self::Req {
        let gt = self.tile_base + tile;
        let xg = self.tiles[tile].clone();
        let send = self.staged[tile]
            .take()
            .expect("post without a packed tile");
        let t0 = Instant::now();
        let req = if let Some(plans) = self.plans.as_deref_mut() {
            if plans[tile].is_none() {
                plans[tile] = Some(self.comm.alltoallv_init(
                    &xg.send_counts,
                    &xg.recv_counts,
                    vec![Complex64::ZERO; xg.total_recv],
                ));
                self.setups += 1;
            }
            let plan = plans[tile].as_mut().expect("just initialised");
            plan.start(self.comm, &send);
            PencilReq::Persistent(tile)
        } else {
            self.setups += 1;
            PencilReq::AdHoc(self.comm.ialltoallv(
                &send,
                &xg.send_counts,
                &xg.recv_counts,
                vec![Complex64::ZERO; xg.total_recv],
            ))
        };
        let t1 = Instant::now();
        self.record_span(
            t0,
            t1,
            EventKind::PostA2a {
                tile: gt,
                bytes: xg.total_send as u64 * ELEM_BYTES,
            },
        );
        req
    }

    fn wait(&mut self, tile: usize, req: Self::Req) -> Result<(), (Self::Req, Error)> {
        let gt = self.tile_base + tile;
        let comm = self.comm;
        let t0 = Instant::now();
        type WaitOutcome = Result<(Vec<Complex64>, bool), (PencilReq, CollError)>;
        let outcome: WaitOutcome = match req {
            PencilReq::AdHoc(mut r) => match self.stall_timeout {
                None => Ok((r.wait(comm), false)),
                Some(timeout) => match r.wait_timeout(comm, timeout) {
                    Ok(()) => Ok((r.take_recv(), false)),
                    // Hand the live request back: the driver may retry it
                    // after a degradation step, or cancel it.
                    Err(e) => Err((PencilReq::AdHoc(r), e)),
                },
            },
            PencilReq::Persistent(pt) => {
                let plan = self
                    .plans
                    .as_deref_mut()
                    .and_then(|p| p[pt].as_mut())
                    .expect("in-flight persistent execution without its plan");
                match self.stall_timeout {
                    None => {
                        plan.wait(comm);
                        Ok((plan.take_recv(), true))
                    }
                    Some(timeout) => match plan.wait_timeout(comm, timeout) {
                        Ok(()) => Ok((plan.take_recv(), true)),
                        Err(e) => Err((PencilReq::Persistent(pt), e)),
                    },
                }
            }
        };
        let t1 = Instant::now();
        self.record_span(t0, t1, EventKind::Wait { tile: gt });
        match outcome {
            Ok((recv, from_plan)) => {
                self.arrived[tile] = Some((recv, from_plan));
                Ok(())
            }
            Err((req, e)) => Err((req, coll_to_error(gt, e))),
        }
    }

    fn unpack_fftx(
        &mut self,
        tile: usize,
        inflight: &mut [(usize, Self::Req)],
    ) -> Result<(), Error> {
        let gt = self.tile_base + tile;
        let (start, cnt) = self.tile_range(tile);
        let (recv, from_plan) = self.arrived[tile]
            .take()
            .ok_or(Error::Internal("unpack without a waited tile"))?;
        match self.kind {
            StageKind::Row => {
                let (ny, nzl) = (self.spec.ny, self.dims.nzl);
                let t0 = Instant::now();
                let mut off = 0;
                for i in 0..self.tiles[tile].recv_counts.len() {
                    let (y0, yc) = (self.dims.ys.offset(i), self.dims.ys.count(i));
                    for x in start..start + cnt {
                        for yl in 0..yc {
                            for zl in 0..nzl {
                                self.dst[(x * nzl + zl) * ny + y0 + yl] = recv[off];
                                off += 1;
                            }
                        }
                    }
                }
                let t1 = Instant::now();
                self.record_span(
                    t0,
                    t1,
                    EventKind::Unpack {
                        tile: gt,
                        subtile: 0,
                    },
                );
                if cnt > 0 && nzl > 0 {
                    let plan = self.plan_post.clone();
                    let t0 = Instant::now();
                    for x in start..start + cnt {
                        for zl in 0..nzl {
                            let s = (x * nzl + zl) * ny;
                            plan.execute(&mut self.dst[s..s + ny], self.scratch);
                        }
                    }
                    let t1 = Instant::now();
                    self.record_span(
                        t0,
                        t1,
                        EventKind::Ffty {
                            tile: gt,
                            subtile: 0,
                        },
                    );
                }
            }
            StageKind::Col => {
                let (nx, nzl, ny2l) = (self.spec.nx, self.dims.nzl, self.dims.ny2l);
                let t0 = Instant::now();
                let mut off = 0;
                for i in 0..self.tiles[tile].recv_counts.len() {
                    let (x0, xc) = (self.dims.xs.offset(i), self.dims.xs.count(i));
                    for xl in 0..xc {
                        for zl in start..start + cnt {
                            for yl in 0..ny2l {
                                self.dst[(yl * nzl + zl) * nx + x0 + xl] = recv[off];
                                off += 1;
                            }
                        }
                    }
                }
                let t1 = Instant::now();
                self.record_span(
                    t0,
                    t1,
                    EventKind::Unpack {
                        tile: gt,
                        subtile: 0,
                    },
                );
                if cnt > 0 && ny2l > 0 {
                    let plan = self.plan_post.clone();
                    let t0 = Instant::now();
                    for yl in 0..ny2l {
                        for zl in start..start + cnt {
                            let s = (yl * nzl + zl) * nx;
                            plan.execute(&mut self.dst[s..s + nx], self.scratch);
                        }
                    }
                    let t1 = Instant::now();
                    self.record_span(
                        t0,
                        t1,
                        EventKind::Fftx {
                            tile: gt,
                            subtile: 0,
                        },
                    );
                }
            }
        }
        if from_plan {
            if let Some(plan) = self.plans.as_deref_mut().and_then(|p| p[tile].as_mut()) {
                plan.restore_recv(recv);
            }
        }
        self.poll(self.f_post.saturating_mul(self.boost), inflight)
    }

    fn boost_polls(&mut self) {
        self.boost = self.poll_boost.max(1);
    }

    fn escalate_watchdog(&mut self) {
        if let Some(t) = self.stall_timeout.as_mut() {
            *t *= 2;
        }
    }

    fn on_degrade(&mut self, tile: usize, action: DegradeAction) {
        let now = Instant::now();
        self.record_span(
            now,
            now,
            EventKind::Degrade {
                tile: self.tile_base + tile,
                action,
            },
        );
    }

    fn cancel(&mut self, _tile: usize, req: Self::Req) {
        match req {
            PencilReq::AdHoc(r) => {
                r.cancel(self.comm);
            }
            PencilReq::Persistent(pt) => {
                // Freeing the plan cancels its in-flight execution; the next
                // run of this tile re-initialises lazily.
                if let Some(plan) = self.plans.as_deref_mut().and_then(|p| p[pt].take()) {
                    plan.free(self.comm);
                }
            }
        }
    }

    fn sched_point(&mut self) {
        self.comm.progress_hint();
    }

    fn threads(&self) -> usize {
        self.threads_n
    }
}

/// Result of one overlapped pencil transform.
pub struct PencilRunOutput {
    /// The spectrum pencil, as [`fft3_pencil`] returns it.
    pub output: PencilOutput,
    /// What the resilient driver had to do across both stages (tile
    /// numbers in [`Recovery::actions`] count stage-2 tiles after
    /// stage 1's).
    pub recovery: Recovery,
    /// Exchange setups performed: one per ad-hoc all-to-all post, one per
    /// persistent-plan init. A [`PencilSession`]'s second execution
    /// reports 0.
    pub exchange_setups: u64,
}

fn validate_pencil(
    comm_size: usize,
    spec: &ProblemSpec,
    grid: PencilGrid,
    params: &TuningParams,
) -> Result<(), Error> {
    grid.validate(comm_size)?;
    grid.validate(spec.p)?;
    for (axis, n) in [("nx", spec.nx), ("ny", spec.ny), ("nz", spec.nz)] {
        if n == 0 {
            return Err(Error::from(ParamError::ZeroExtent(axis)));
        }
    }
    if params.t < 1 {
        return Err(ParamError::TileSize(params.t).into());
    }
    if params.threads < 1 {
        return Err(ParamError::Threads(params.threads).into());
    }
    Ok(())
}

fn merge_recovery(mut a: Recovery, b: Recovery) -> Recovery {
    a.stalls_detected += b.stalls_detected;
    a.actions.extend(b.actions);
    a.fell_back |= b.fell_back;
    a.corruptions_healed += b.corruptions_healed;
    a
}

/// The overlapped transform proper, shared by the one-shot entry points
/// (`plans = None`: ad-hoc `ialltoallv` per tile) and [`PencilSession`]
/// (persistent plans, initialised lazily on first use).
#[allow(clippy::too_many_arguments)]
fn run_pencil_overlapped<R: Recorder>(
    row_comm: &Comm,
    col_comm: &Comm,
    spec: &ProblemSpec,
    grid: PencilGrid,
    dims: &PencilDims,
    params: &TuningParams,
    dir: Direction,
    input: &[Complex64],
    res: &Resilience,
    recorder: &mut R,
    row_plans: Option<&mut TilePlans>,
    col_plans: Option<&mut TilePlans>,
) -> Result<PencilRunOutput, Error> {
    assert_eq!(
        input.len(),
        dims.nxl * dims.nyc * spec.nz,
        "input must be the rank's pencil"
    );
    let rank = dims.row * grid.pc + dims.col;
    let geom = TransformPlanCache::global()
        .pencil_geometry(spec, grid.pr, grid.pc, rank, params.t)
        .0;

    let cache = PlanCache::global();
    let plan_z = cache.plan(spec.nz, dir, Rigor::Estimate);
    let plan_y = cache.plan(spec.ny, dir, Rigor::Estimate);
    let plan_x = cache.plan(spec.nx, dir, Rigor::Estimate);
    let mut scratch = vec![
        Complex64::ZERO;
        plan_z
            .scratch_len()
            .max(plan_y.scratch_len())
            .max(plan_x.scratch_len())
    ];

    let mut a = input.to_vec();
    let mut b = vec![Complex64::ZERO; dims.nxl * dims.nzl * spec.ny];
    let mut c = vec![Complex64::ZERO; dims.ny2l * dims.nzl * spec.nx];
    let epoch = Instant::now();
    let mut setups = 0u64;

    // ---- Stage 1: FFTz/Pack ∥ row exchange ∥ Unpack/FFTy ------------------
    let k1 = geom.row.len();
    let rec1 = {
        let mut env = StageEnv {
            comm: row_comm,
            kind: StageKind::Row,
            spec: *spec,
            dims,
            tiles: &geom.row,
            tsize: params.t.clamp(1, dims.nxl.max(1)),
            extent: dims.nxl,
            w: params.w,
            f_pre: params.fp,
            f_post: params.fu + params.fy,
            boost: 1,
            poll_boost: res.poll_boost,
            stall_timeout: res.stall_timeout,
            src: &mut a,
            dst: &mut b,
            plan_pre: Some(plan_z.clone()),
            plan_post: plan_y.clone(),
            scratch: &mut scratch,
            staged: (0..k1).map(|_| None).collect(),
            arrived: (0..k1).map(|_| None).collect(),
            plans: row_plans,
            recorder,
            epoch,
            tile_base: 0,
            threads_n: params.threads,
            setups: 0,
        };
        let rec = try_run_new(&mut env, res)?;
        setups += env.setups;
        rec
    };

    // ---- Stage 2: Pack ∥ column exchange ∥ Unpack/FFTx --------------------
    let k2 = geom.col.len();
    let rec2 = {
        let mut env = StageEnv {
            comm: col_comm,
            kind: StageKind::Col,
            spec: *spec,
            dims,
            tiles: &geom.col,
            tsize: params.t.clamp(1, dims.nzl.max(1)),
            extent: dims.nzl,
            w: params.w,
            f_pre: params.fp,
            f_post: params.fu + params.fx,
            boost: 1,
            poll_boost: res.poll_boost,
            stall_timeout: res.stall_timeout,
            src: &mut b,
            dst: &mut c,
            plan_pre: None,
            plan_post: plan_x.clone(),
            scratch: &mut scratch,
            staged: (0..k2).map(|_| None).collect(),
            arrived: (0..k2).map(|_| None).collect(),
            plans: col_plans,
            recorder,
            epoch,
            tile_base: k1,
            threads_n: params.threads,
            setups: 0,
        };
        let rec = try_run_new(&mut env, res)?;
        setups += env.setups;
        rec
    };

    Ok(PencilRunOutput {
        output: PencilOutput {
            data: c,
            ny2l: dims.ny2l,
            nzl: dims.nzl,
        },
        recovery: merge_recovery(rec1, rec2),
        exchange_setups: setups,
    })
}

/// Distributed 3-D FFT with 2-D (pencil) decomposition and the paper's
/// tile-window overlap on **both** exchanges.
///
/// `input` is this rank's `(X_r, Y_c, Z_all)` block in local `x-y-z`
/// layout; the output matches [`fft3_pencil`] exactly (bit-for-bit — both
/// paths run the same per-line kernels in the same order). Collective
/// over `comm`.
///
/// The relevant tuning knobs are `t` (planes per tile along the tiled
/// axis), `w` (window), the `F*` polling frequencies (`fp` during pack,
/// `fu` during unpack, `fy`/`fx` during the post-exchange FFT), and
/// `threads`; the slab subtile knobs (`px`, `pz`, `uy`, `uz`) are
/// accepted and ignored.
///
/// # Panics
/// On any validation or pipeline fault; use
/// [`try_fft3_pencil_overlapped`] for the typed error path.
pub fn fft3_pencil_overlapped(
    comm: &Comm,
    spec: ProblemSpec,
    grid: PencilGrid,
    params: TuningParams,
    dir: Direction,
    input: &[Complex64],
) -> PencilOutput {
    try_fft3_pencil_overlapped(comm, spec, grid, params, dir, input)
        .map(|r| r.output)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`fft3_pencil_overlapped`] with default resilience (no
/// watchdog) and tracing off.
pub fn try_fft3_pencil_overlapped(
    comm: &Comm,
    spec: ProblemSpec,
    grid: PencilGrid,
    params: TuningParams,
    dir: Direction,
    input: &[Complex64],
) -> Result<PencilRunOutput, Error> {
    try_fft3_pencil_overlapped_traced(
        comm,
        spec,
        grid,
        params,
        dir,
        input,
        &Resilience::default(),
        &mut NoopRecorder,
    )
}

/// [`try_fft3_pencil_overlapped`] with a stall policy and a trace sink:
/// the full degradation ladder (boost polls → shrink window → blocking
/// fallback) guards both exchanges, and every span lands in `recorder`
/// with stage-2 tiles numbered after stage 1's.
#[allow(clippy::too_many_arguments)]
pub fn try_fft3_pencil_overlapped_traced<R: Recorder>(
    comm: &Comm,
    spec: ProblemSpec,
    grid: PencilGrid,
    params: TuningParams,
    dir: Direction,
    input: &[Complex64],
    res: &Resilience,
    recorder: &mut R,
) -> Result<PencilRunOutput, Error> {
    validate_pencil(comm.size(), &spec, grid, &params)?;
    let dims = PencilDims::new(&spec, grid, comm.rank());
    let (row_comm, col_comm) = split_pencil(comm, grid);
    run_pencil_overlapped(
        &row_comm, &col_comm, &spec, grid, &dims, &params, dir, input, res, recorder, None, None,
    )
}

/// A setup-once, execute-many overlapped pencil transform: the row/column
/// subcommunicators are split once and every tile's exchange runs as a
/// persistent plan (`alltoallv_init` on first use, `start`/`wait`
/// afterwards), so repeated transforms of one geometry pay zero exchange
/// setups after the first execution.
pub struct PencilSession {
    spec: ProblemSpec,
    grid: PencilGrid,
    params: TuningParams,
    dir: Direction,
    dims: PencilDims,
    row_comm: Comm,
    col_comm: Comm,
    row_plans: TilePlans,
    col_plans: TilePlans,
    executions: u64,
}

impl PencilSession {
    /// Validates, splits the subcommunicators, and sizes the per-tile plan
    /// slots (plans themselves are initialised lazily by the first
    /// execution). Collective over `comm`.
    pub fn new(
        comm: &Comm,
        spec: ProblemSpec,
        grid: PencilGrid,
        params: TuningParams,
        dir: Direction,
    ) -> Result<Self, Error> {
        validate_pencil(comm.size(), &spec, grid, &params)?;
        let dims = PencilDims::new(&spec, grid, comm.rank());
        let (row_comm, col_comm) = split_pencil(comm, grid);
        let k1 = dims.nxl.div_ceil(params.t.clamp(1, dims.nxl.max(1)));
        let k2 = dims.nzl.div_ceil(params.t.clamp(1, dims.nzl.max(1)));
        Ok(PencilSession {
            spec,
            grid,
            params,
            dir,
            dims,
            row_comm,
            col_comm,
            row_plans: (0..k1).map(|_| None).collect(),
            col_plans: (0..k2).map(|_| None).collect(),
            executions: 0,
        })
    }

    /// One overlapped transform with default resilience and tracing off.
    pub fn execute(&mut self, input: &[Complex64]) -> Result<PencilRunOutput, Error> {
        self.execute_traced(input, &Resilience::default(), &mut NoopRecorder)
    }

    /// One overlapped transform with a stall policy and a trace sink.
    pub fn execute_traced<R: Recorder>(
        &mut self,
        input: &[Complex64],
        res: &Resilience,
        recorder: &mut R,
    ) -> Result<PencilRunOutput, Error> {
        let out = run_pencil_overlapped(
            &self.row_comm,
            &self.col_comm,
            &self.spec,
            self.grid,
            &self.dims,
            &self.params,
            self.dir,
            input,
            res,
            recorder,
            Some(&mut self.row_plans),
            Some(&mut self.col_plans),
        )?;
        self.executions += 1;
        Ok(out)
    }

    /// Completed executions.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Frees every initialised persistent plan (collective over the
    /// subcommunicators, like `MPI_Request_free`); returns how many were
    /// freed.
    pub fn free(mut self) -> usize {
        let mut n = 0;
        for slot in self.row_plans.iter_mut() {
            if let Some(plan) = slot.take() {
                plan.free(&self.row_comm);
                n += 1;
            }
        }
        for slot in self.col_plans.iter_mut() {
            if let Some(plan) = slot.take() {
                plan.free(&self.col_comm);
                n += 1;
            }
        }
        n
    }
}

/// A starting point for tuning the overlapped pencil backend on
/// `grid`: ~16 tiles along the longer tiled axis, a window of 2, and
/// polling proportional to the larger subgroup.
pub fn pencil_seed(spec: &ProblemSpec, grid: PencilGrid) -> TuningParams {
    let nxl = spec.nx.div_ceil(grid.pr.max(1)).max(1);
    let nzl = spec.nz.div_ceil(grid.pc.max(1)).max(1);
    let t = nxl.max(nzl).div_ceil(16).max(1);
    let f = (grid.pr.max(grid.pc) / 2).max(1) as u32;
    TuningParams {
        t,
        w: 2,
        px: 1,
        pz: 1,
        uy: 1,
        uz: 1,
        fy: f,
        fp: f,
        fu: f,
        fx: f,
        threads: 1,
    }
}

/// Whether `(params, grid)` is worth evaluating for the overlapped pencil
/// backend — the tuner's feasibility predicate.
pub fn pencil_feasible(spec: &ProblemSpec, grid: PencilGrid, params: &TuningParams) -> bool {
    !grid.is_empty()
        && grid.len() == spec.p
        && spec.nx > 0
        && spec.ny > 0
        && spec.nz > 0
        && params.t >= 1
        && params.t <= spec.nx.max(spec.nz)
        && params.threads >= 1
}

// ---------------------------------------------------------------------------
// Cost models
// ---------------------------------------------------------------------------

/// Simulated cost of the (blocking) pencil transform: three FFT sweeps,
/// two pack/exchange/unpack stages over `√p`-sized subgroups.
pub fn pencil_simulated(platform: Platform, spec: ProblemSpec, grid: PencilGrid) -> f64 {
    assert_eq!(grid.len(), spec.p);
    let times = run_sim(platform, spec.p, move |sim| {
        let m = sim.platform().machine.clone();
        let net = sim.platform().net.clone();
        let (pr, pc) = (grid.pr, grid.pc);
        let nxl = spec.nx.div_ceil(pr);
        let nyc = spec.ny.div_ceil(pc);
        let nzl = spec.nz.div_ceil(pc);
        let ny2l = spec.ny.div_ceil(pr);

        // FFTz + pack/unpack + row exchange.
        sim.compute(m.fft_batch(spec.nz, (nxl * nyc) as u64));
        let stage1_bytes = (nxl * nyc * spec.nz) as u64 * ELEM_BYTES;
        sim.compute(m.pack(stage1_bytes, m.subtile_cache_bytes, nzl as u64 * ELEM_BYTES));
        // Row exchange rendezvous is only among pc ranks, but the engine's
        // collectives are global; model the subgroup exchange as a global
        // rendezvous with the subgroup's transfer cost (symmetric rows run
        // in parallel on disjoint links).
        let per_peer = stage1_bytes / pc.max(1) as u64;
        let (_, _end) = sim.blocking_alltoall(0); // rendezvous
        sim.compute(net.blocking_duration(pc, per_peer).as_secs_f64());
        sim.compute(m.pack(
            stage1_bytes,
            m.subtile_cache_bytes,
            (spec.ny / pc.max(1)).max(1) as u64 * ELEM_BYTES,
        ));

        // FFTy + pack/unpack + column exchange.
        sim.compute(m.fft_batch(spec.ny, (nxl * nzl) as u64));
        let stage2_bytes = (nxl * spec.ny * nzl) as u64 * ELEM_BYTES;
        let per_peer = stage2_bytes / pr.max(1) as u64;
        sim.compute(m.pack(
            stage2_bytes,
            m.subtile_cache_bytes,
            (spec.ny / pr.max(1)).max(1) as u64 * ELEM_BYTES,
        ));
        let (_, _end) = sim.blocking_alltoall(0);
        sim.compute(net.blocking_duration(pr, per_peer).as_secs_f64());
        sim.compute(m.pack(
            stage2_bytes,
            m.subtile_cache_bytes,
            (spec.nx / pr.max(1)).max(1) as u64 * ELEM_BYTES,
        ));

        // FFTx.
        sim.compute(m.fft_batch(spec.nx, (ny2l * nzl) as u64));
        sim.now().as_secs_f64()
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Simulated cost of the pencil transform **with the paper's overlap
/// applied to both exchanges** — §7's main future-work item realised on
/// the model.
///
/// Stage 1 (z↔y within rows) tiles along x: each x-slice's FFTz/Pack
/// overlaps the previous slices' row exchanges; Unpack/FFTy overlap the
/// next ones. Stage 2 (y↔x within columns) tiles along z the same way,
/// ending in FFTx. `w` windows and `f` polls per phase mirror the slab
/// pipeline's `W`/`F*`.
pub fn pencil_overlap_simulated(
    platform: Platform,
    spec: ProblemSpec,
    grid: PencilGrid,
    w: usize,
    f: u32,
) -> f64 {
    assert_eq!(grid.len(), spec.p);
    assert!(w >= 1);
    let times = run_sim(platform, spec.p, move |sim| {
        let m = sim.platform().machine.clone();
        let (pr, pc) = (grid.pr, grid.pc);
        let nxl = spec.nx.div_ceil(pr).max(1);
        let nyc = spec.ny.div_ceil(pc).max(1);
        let nzl = spec.nz.div_ceil(pc).max(1);
        let ny2l = spec.ny.div_ceil(pr).max(1);
        let cache = m.subtile_cache_bytes;

        // ---- Stage 1: tiles along x, exchange within rows (size pc) ----
        let k1 = nxl.clamp(1, 16);
        let xt = nxl.div_ceil(k1); // x-planes per tile
        let tile_bytes = (xt * nyc * spec.nz) as u64 * ELEM_BYTES;
        let per_peer = tile_bytes / pc.max(1) as u64;
        let mut window: Vec<simnet::OpId> = Vec::new();
        let drain = |sim: &mut simnet::SimRank, window: &mut Vec<simnet::OpId>, keep: usize| {
            while window.len() > keep {
                let op = window.remove(0);
                sim.wait(op);
                // Unpack + FFTy of the drained tile.
                let unpack = m.pack(
                    tile_bytes,
                    cache,
                    (spec.ny / pc.max(1)).max(1) as u64 * ELEM_BYTES,
                );
                let ffty = m.fft_batch(spec.ny, (xt * nzl) as u64);
                sim.compute_with_polls(unpack + ffty, f, window);
            }
        };
        for _i in 0..k1 {
            let fftz = m.fft_batch(spec.nz, (xt * nyc) as u64);
            let pack = m.pack(tile_bytes, cache, nzl as u64 * ELEM_BYTES);
            sim.compute_with_polls(fftz + pack, f, &window);
            drain(sim, &mut window, w.saturating_sub(1));
            window.push(sim.post_alltoall_in_group(pc, per_peer));
        }
        drain(sim, &mut window, 0);

        // ---- Stage 2: tiles along z, exchange within columns (size pr) --
        let k2 = nzl.clamp(1, 16);
        let zt = nzl.div_ceil(k2);
        let tile_bytes = (nxl * spec.ny * zt) as u64 * ELEM_BYTES;
        let per_peer = tile_bytes / pr.max(1) as u64;
        let mut window: Vec<simnet::OpId> = Vec::new();
        let drain2 = |sim: &mut simnet::SimRank, window: &mut Vec<simnet::OpId>, keep: usize| {
            while window.len() > keep {
                let op = window.remove(0);
                sim.wait(op);
                let unpack = m.pack(
                    tile_bytes,
                    cache,
                    (spec.nx / pr.max(1)).max(1) as u64 * ELEM_BYTES,
                );
                let fftx = m.fft_batch(spec.nx, (ny2l * zt) as u64);
                sim.compute_with_polls(unpack + fftx, f, window);
            }
        };
        for _j in 0..k2 {
            let pack = m.pack(
                tile_bytes,
                cache,
                (spec.ny / pr.max(1)).max(1) as u64 * ELEM_BYTES,
            );
            sim.compute_with_polls(pack, f, &window);
            drain2(sim, &mut window, w.saturating_sub(1));
            window.push(sim.post_alltoall_in_group(pr, per_peer));
        }
        drain2(sim, &mut window, 0);

        sim.now().as_secs_f64()
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Per-stage persistent-plan slots for the simulated backend.
#[derive(Default)]
struct PencilSimPlans {
    row: Vec<Option<simnet::PlanId>>,
    col: Vec<Option<simnet::PlanId>>,
}

/// One simulated overlapped pencil transform on one rank, honouring the
/// full tuning vector the way the real backend does: `t` sizes the tiles,
/// `w` windows (0 = post-then-wait, no overlap), `fp` polls during the
/// pre-exchange compute, `fu + fy` / `fu + fx` during the post-exchange
/// compute of stage 1 / stage 2. With `plans`, each tile's exchange is a
/// persistent plan: `alltoall_init` (setup charged) on first use,
/// `start` (no setup) afterwards.
fn pencil_overlap_rank_sim(
    sim: &mut simnet::SimRank,
    spec: ProblemSpec,
    grid: PencilGrid,
    params: TuningParams,
    mut plans: Option<&mut PencilSimPlans>,
) {
    let m = sim.platform().machine.clone();
    let (pr, pc) = (grid.pr, grid.pc);
    let nxl = spec.nx.div_ceil(pr).max(1);
    let nyc = spec.ny.div_ceil(pc).max(1);
    let nzl = spec.nz.div_ceil(pc).max(1);
    let ny2l = spec.ny.div_ceil(pr).max(1);
    let cache = m.subtile_cache_bytes;
    let w = params.w;

    // ---- Stage 1: tiles along x, exchange within rows (size pc) --------
    let xt = params.t.clamp(1, nxl);
    let k1 = nxl.div_ceil(xt);
    let tile_bytes = (xt * nyc * spec.nz) as u64 * ELEM_BYTES;
    let per_peer = tile_bytes / pc.max(1) as u64;
    let f_post = params.fu + params.fy;
    let mut window: Vec<simnet::OpId> = Vec::new();
    let drain = |sim: &mut simnet::SimRank, window: &mut Vec<simnet::OpId>, keep: usize| {
        while window.len() > keep {
            let op = window.remove(0);
            sim.wait(op);
            let unpack = m.pack(
                tile_bytes,
                cache,
                (spec.ny / pc.max(1)).max(1) as u64 * ELEM_BYTES,
            );
            let ffty = m.fft_batch(spec.ny, (xt * nzl) as u64);
            sim.compute_with_polls(unpack + ffty, f_post, window);
        }
    };
    for i in 0..k1 {
        let fftz = m.fft_batch(spec.nz, (xt * nyc) as u64);
        let pack = m.pack(tile_bytes, cache, nzl as u64 * ELEM_BYTES);
        sim.compute_with_polls(fftz + pack, params.fp, &window);
        if w > 0 {
            drain(sim, &mut window, w - 1);
        }
        let op = match plans.as_deref_mut() {
            Some(p) => {
                let plan =
                    *p.row[i].get_or_insert_with(|| sim.alltoall_init_in_group(pc, per_peer));
                sim.start(plan)
            }
            None => sim.post_alltoall_in_group(pc, per_peer),
        };
        window.push(op);
        if w == 0 {
            drain(sim, &mut window, 0);
        }
    }
    drain(sim, &mut window, 0);

    // ---- Stage 2: tiles along z, exchange within columns (size pr) ------
    let zt = params.t.clamp(1, nzl);
    let k2 = nzl.div_ceil(zt);
    let tile_bytes = (nxl * spec.ny * zt) as u64 * ELEM_BYTES;
    let per_peer = tile_bytes / pr.max(1) as u64;
    let f_post = params.fu + params.fx;
    let mut window: Vec<simnet::OpId> = Vec::new();
    let drain2 = |sim: &mut simnet::SimRank, window: &mut Vec<simnet::OpId>, keep: usize| {
        while window.len() > keep {
            let op = window.remove(0);
            sim.wait(op);
            let unpack = m.pack(
                tile_bytes,
                cache,
                (spec.nx / pr.max(1)).max(1) as u64 * ELEM_BYTES,
            );
            let fftx = m.fft_batch(spec.nx, (ny2l * zt) as u64);
            sim.compute_with_polls(unpack + fftx, f_post, window);
        }
    };
    for j in 0..k2 {
        let pack = m.pack(
            tile_bytes,
            cache,
            (spec.ny / pr.max(1)).max(1) as u64 * ELEM_BYTES,
        );
        sim.compute_with_polls(pack, params.fp, &window);
        if w > 0 {
            drain2(sim, &mut window, w - 1);
        }
        let op = match plans.as_deref_mut() {
            Some(p) => {
                let plan =
                    *p.col[j].get_or_insert_with(|| sim.alltoall_init_in_group(pr, per_peer));
                sim.start(plan)
            }
            None => sim.post_alltoall_in_group(pr, per_peer),
        };
        window.push(op);
        if w == 0 {
            drain2(sim, &mut window, 0);
        }
    }
    drain2(sim, &mut window, 0);
}

/// [`pencil_overlap_simulated`] honouring a full [`TuningParams`] vector —
/// what the tuner's pencil objective evaluates. Unlike the two-knob
/// variant, `t` sizes the tiles directly (the real backend's semantics)
/// and the four polling knobs map to the stages exactly as
/// [`try_fft3_pencil_overlapped`] applies them.
pub fn pencil_overlap_simulated_params(
    platform: Platform,
    spec: ProblemSpec,
    grid: PencilGrid,
    params: &TuningParams,
) -> f64 {
    assert_eq!(grid.len(), spec.p);
    let params = *params;
    let times = run_sim(platform, spec.p, move |sim| {
        pencil_overlap_rank_sim(sim, spec, grid, params, None);
        sim.now().as_secs_f64()
    });
    times.into_iter().fold(0.0, f64::max)
}

/// `reps` back-to-back simulated overlapped pencil transforms with
/// persistent exchange plans: the first repetition pays every tile's
/// `alltoall_init` setup charge, later ones only `start`. Returns the
/// per-repetition makespans (max across ranks).
pub fn pencil_overlap_simulated_repeated(
    platform: Platform,
    spec: ProblemSpec,
    grid: PencilGrid,
    params: &TuningParams,
    reps: usize,
) -> Vec<f64> {
    assert_eq!(grid.len(), spec.p);
    let params = *params;
    let times: Vec<Vec<f64>> = run_sim(platform, spec.p, move |sim| {
        let nxl = spec.nx.div_ceil(grid.pr).max(1);
        let nzl = spec.nz.div_ceil(grid.pc).max(1);
        let k1 = nxl.div_ceil(params.t.clamp(1, nxl));
        let k2 = nzl.div_ceil(params.t.clamp(1, nzl));
        let mut plans = PencilSimPlans {
            row: vec![None; k1],
            col: vec![None; k2],
        };
        let mut out = Vec::with_capacity(reps);
        for _ in 0..reps {
            // Rendezvous so per-rep spans measure the transform, not drift
            // accumulated by earlier repetitions.
            let (_, _end) = sim.blocking_alltoall(0);
            let t0 = sim.now().as_secs_f64();
            pencil_overlap_rank_sim(sim, spec, grid, params, Some(&mut plans));
            out.push(sim.now().as_secs_f64() - t0);
        }
        out
    });
    (0..reps)
        .map(|r| times.iter().map(|t| t[r]).fold(0.0, f64::max))
        .collect()
}

// ---------------------------------------------------------------------------
// Test/verification helpers (shared with mpicheck and the test suites)
// ---------------------------------------------------------------------------

/// `rank`'s `(X_r, Y_c, Z_all)` pencil of the deterministic
/// [`test_field`] array — the standard input for pencil correctness
/// checks.
pub fn pencil_test_input(spec: &ProblemSpec, grid: PencilGrid, rank: usize) -> Vec<Complex64> {
    let (row, col) = grid.coords(rank);
    let xs = AxisSplit::new(spec.nx, grid.pr);
    let ys = AxisSplit::new(spec.ny, grid.pc);
    let mut v = Vec::new();
    for xl in 0..xs.count(row) {
        for yl in 0..ys.count(col) {
            for z in 0..spec.nz {
                v.push(test_field(xs.offset(row) + xl, ys.offset(col) + yl, z));
            }
        }
    }
    v
}

/// Max |difference| between `rank`'s pencil `out` and the full serial
/// `reference` spectrum (in `x-y-z` layout). Exactly 0.0 when the pencil
/// path is bit-identical to serial.
pub fn compare_pencil_with_serial(
    spec: &ProblemSpec,
    grid: PencilGrid,
    rank: usize,
    out: &PencilOutput,
    reference: &[Complex64],
) -> f64 {
    let (row, col) = grid.coords(rank);
    let y2s = AxisSplit::new(spec.ny, grid.pr);
    let zsp = AxisSplit::new(spec.nz, grid.pc);
    let mut err = 0.0f64;
    for yl in 0..out.ny2l {
        for zl in 0..out.nzl {
            for x in 0..spec.nx {
                let got = out.data[(yl * out.nzl + zl) * spec.nx + x];
                let want = reference
                    [(x * spec.ny + y2s.offset(row) + yl) * spec.nz + zsp.offset(col) + zl];
                err = err.max((got - want).abs());
            }
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{fft3_serial, full_test_array};
    use crate::trace::MemRecorder;
    use simnet::model::umd_cluster;
    use std::sync::Arc;

    fn serial_reference(spec: ProblemSpec, dir: Direction) -> Arc<Vec<Complex64>> {
        let mut reference = full_test_array(spec.nx, spec.ny, spec.nz);
        fft3_serial(&mut reference, spec.nx, spec.ny, spec.nz, dir);
        Arc::new(reference)
    }

    fn check(spec: ProblemSpec, grid: PencilGrid) {
        let reference = serial_reference(spec, Direction::Forward);
        let errs = mpisim::run(spec.p, move |comm| {
            let input = pencil_test_input(&spec, grid, comm.rank());
            let out = fft3_pencil(&comm, spec, grid, Direction::Forward, &input);
            compare_pencil_with_serial(&spec, grid, comm.rank(), &out, &reference)
        });
        for (r, e) in errs.iter().enumerate() {
            assert!(
                *e < 1e-9 * spec.len() as f64,
                "rank {r}: err {e} ({spec:?}, {grid:?})"
            );
        }
    }

    fn check_overlapped(spec: ProblemSpec, grid: PencilGrid, params: TuningParams) {
        let reference = serial_reference(spec, Direction::Forward);
        let errs = mpisim::run(spec.p, move |comm| {
            let input = pencil_test_input(&spec, grid, comm.rank());
            let out =
                try_fft3_pencil_overlapped(&comm, spec, grid, params, Direction::Forward, &input)
                    .expect("overlapped pencil transform");
            assert!(out.recovery.clean());
            compare_pencil_with_serial(&spec, grid, comm.rank(), &out.output, &reference)
        });
        for (r, e) in errs.iter().enumerate() {
            // The overlapped path runs the same per-line kernels in the
            // same order as the blocking path, so it matches serial to the
            // same tolerance (and in practice bit-exactly; the end-to-end
            // suite pins that).
            assert!(
                *e < 1e-9 * spec.len() as f64,
                "rank {r}: err {e} ({spec:?}, {grid:?})"
            );
        }
    }

    #[test]
    fn pencil_matches_serial_2x2() {
        check(ProblemSpec::cube(8, 4), PencilGrid { pr: 2, pc: 2 });
    }

    #[test]
    fn pencil_matches_serial_2x3() {
        check(
            ProblemSpec {
                nx: 8,
                ny: 12,
                nz: 6,
                p: 6,
            },
            PencilGrid { pr: 2, pc: 3 },
        );
    }

    #[test]
    fn pencil_matches_serial_non_divisible() {
        check(
            ProblemSpec {
                nx: 7,
                ny: 9,
                nz: 10,
                p: 6,
            },
            PencilGrid { pr: 3, pc: 2 },
        );
    }

    #[test]
    fn pencil_degenerate_1xp_equals_slab_distribution() {
        // pr = 1 reduces to a slab-like decomposition on z/y only.
        check(ProblemSpec::cube(8, 4), PencilGrid { pr: 1, pc: 4 });
        check(ProblemSpec::cube(8, 4), PencilGrid { pr: 4, pc: 1 });
    }

    #[test]
    fn overlapped_pencil_matches_serial() {
        let params = TuningParams {
            t: 2,
            w: 2,
            ..pencil_seed(&ProblemSpec::cube(8, 4), PencilGrid { pr: 2, pc: 2 })
        };
        check_overlapped(ProblemSpec::cube(8, 4), PencilGrid { pr: 2, pc: 2 }, params);
    }

    #[test]
    fn overlapped_pencil_matches_serial_non_divisible() {
        let spec = ProblemSpec {
            nx: 7,
            ny: 9,
            nz: 10,
            p: 6,
        };
        let grid = PencilGrid { pr: 3, pc: 2 };
        let params = TuningParams {
            t: 2,
            w: 2,
            ..pencil_seed(&spec, grid)
        };
        check_overlapped(spec, grid, params);
    }

    #[test]
    fn overlapped_pencil_matches_serial_with_zero_window() {
        // w = 0 is the NEW-0 degenerate schedule: post then wait per tile.
        let spec = ProblemSpec::cube(8, 4);
        let grid = PencilGrid { pr: 2, pc: 2 };
        let params = TuningParams {
            t: 1,
            w: 0,
            ..pencil_seed(&spec, grid)
        };
        check_overlapped(spec, grid, params);
    }

    #[test]
    fn overlapped_pencil_is_bit_exact_vs_blocking_pencil() {
        // Same kernels, same per-line order ⇒ identical bit patterns.
        let spec = ProblemSpec {
            nx: 8,
            ny: 12,
            nz: 6,
            p: 6,
        };
        let grid = PencilGrid { pr: 2, pc: 3 };
        let params = TuningParams {
            t: 2,
            w: 2,
            ..pencil_seed(&spec, grid)
        };
        let ok = mpisim::run(spec.p, move |comm| {
            let input = pencil_test_input(&spec, grid, comm.rank());
            let blocking = fft3_pencil(&comm, spec, grid, Direction::Forward, &input);
            let overlapped =
                try_fft3_pencil_overlapped(&comm, spec, grid, params, Direction::Forward, &input)
                    .expect("overlapped pencil transform");
            let same_bits = blocking
                .data
                .iter()
                .zip(overlapped.output.data.iter())
                .all(|(a, b)| (a.re.to_bits(), a.im.to_bits()) == (b.re.to_bits(), b.im.to_bits()));
            same_bits
                && blocking.ny2l == overlapped.output.ny2l
                && blocking.nzl == overlapped.output.nzl
        });
        assert!(
            ok.into_iter().all(|b| b),
            "overlapped diverged from blocking"
        );
    }

    #[test]
    fn grid_mismatch_is_a_typed_error_not_a_panic() {
        // Regression: the try_ contract used to assert on a mis-sized grid.
        let spec = ProblemSpec::cube(8, 4);
        let bad = PencilGrid { pr: 2, pc: 3 }; // 6 ≠ 4 ranks
        let errs = mpisim::run(4, move |comm| {
            let input = vec![Complex64::ZERO; 8 * 8 * 8];
            let blocking = try_fft3_pencil(&comm, spec, bad, Direction::Forward, &input).err();
            let overlapped = try_fft3_pencil_overlapped(
                &comm,
                spec,
                bad,
                pencil_seed(&spec, bad),
                Direction::Forward,
                &input,
            )
            .err();
            (blocking, overlapped)
        });
        for (blocking, overlapped) in errs {
            let want = Error::GridMismatch {
                pr: 2,
                pc: 3,
                expected: 4,
            };
            assert_eq!(blocking, Some(want));
            assert_eq!(overlapped, Some(want));
        }
    }

    #[test]
    fn near_square_rejects_zero_ranks() {
        // Regression: near_square(0) silently built the 1×0 empty grid,
        // whose coords() divides by zero.
        assert_eq!(
            PencilGrid::try_near_square(0),
            Err(Error::InfeasibleParams(ParamError::ZeroRanks))
        );
        let empty = PencilGrid { pr: 1, pc: 0 };
        assert_eq!(
            empty.validate(0),
            Err(Error::GridMismatch {
                pr: 1,
                pc: 0,
                expected: 0
            })
        );
    }

    #[test]
    fn near_square_grids() {
        assert_eq!(PencilGrid::near_square(16), PencilGrid { pr: 4, pc: 4 });
        assert_eq!(PencilGrid::near_square(12), PencilGrid { pr: 3, pc: 4 });
        assert_eq!(PencilGrid::near_square(7), PencilGrid { pr: 1, pc: 7 });
    }

    #[test]
    fn divisor_pairs_cover_exactly_the_divisors() {
        assert_eq!(
            PencilGrid::divisor_pairs(12),
            vec![
                PencilGrid { pr: 1, pc: 12 },
                PencilGrid { pr: 2, pc: 6 },
                PencilGrid { pr: 3, pc: 4 },
                PencilGrid { pr: 4, pc: 3 },
                PencilGrid { pr: 6, pc: 2 },
                PencilGrid { pr: 12, pc: 1 },
            ]
        );
        assert!(PencilGrid::divisor_pairs(0).is_empty());
        for g in PencilGrid::divisor_pairs(360) {
            assert_eq!(g.len(), 360);
        }
    }

    #[test]
    fn session_reuses_persistent_plans_across_executions() {
        let spec = ProblemSpec {
            nx: 8,
            ny: 12,
            nz: 6,
            p: 6,
        };
        let grid = PencilGrid { pr: 2, pc: 3 };
        let params = TuningParams {
            t: 2,
            w: 2,
            ..pencil_seed(&spec, grid)
        };
        let reference = serial_reference(spec, Direction::Forward);
        let errs = mpisim::run(spec.p, move |comm| {
            let mut session = PencilSession::new(&comm, spec, grid, params, Direction::Forward)
                .expect("session setup");
            let input = pencil_test_input(&spec, grid, comm.rank());
            let dims = PencilDims::new(&spec, grid, comm.rank());
            let k1 = dims.nxl.div_ceil(params.t.clamp(1, dims.nxl.max(1)));
            let k2 = dims.nzl.div_ceil(params.t.clamp(1, dims.nzl.max(1)));
            let mut max_err = 0.0f64;
            for rep in 0..3 {
                let out = session.execute(&input).expect("session execution");
                // First execution initialises every tile's plan; later ones
                // only start them.
                let expect_setups = if rep == 0 { (k1 + k2) as u64 } else { 0 };
                assert_eq!(out.exchange_setups, expect_setups, "rep {rep}");
                max_err = max_err.max(compare_pencil_with_serial(
                    &spec,
                    grid,
                    comm.rank(),
                    &out.output,
                    &reference,
                ));
            }
            assert_eq!(session.executions(), 3);
            let freed = session.free();
            assert_eq!(freed, k1 + k2);
            max_err
        });
        for (r, e) in errs.iter().enumerate() {
            assert!(*e < 1e-9 * spec.len() as f64, "rank {r}: err {e}");
        }
    }

    #[test]
    fn traced_overlapped_run_records_both_stages() {
        let spec = ProblemSpec::cube(8, 4);
        let grid = PencilGrid { pr: 2, pc: 2 };
        let params = TuningParams {
            t: 2,
            w: 2,
            ..pencil_seed(&spec, grid)
        };
        let streams = mpisim::run(spec.p, move |comm| {
            let input = pencil_test_input(&spec, grid, comm.rank());
            let mut rec = MemRecorder::default();
            try_fft3_pencil_overlapped_traced(
                &comm,
                spec,
                grid,
                params,
                Direction::Forward,
                &input,
                &Resilience::default(),
                &mut rec,
            )
            .expect("traced overlapped pencil transform");
            rec.take()
        });
        for events in streams {
            let has = |pred: &dyn Fn(&EventKind) -> bool| events.iter().any(|e| pred(&e.kind));
            assert!(has(&|k| matches!(k, EventKind::Fftz)));
            assert!(has(&|k| matches!(k, EventKind::Pack { .. })));
            assert!(has(&|k| matches!(k, EventKind::PostA2a { .. })));
            assert!(has(&|k| matches!(k, EventKind::Wait { .. })));
            assert!(has(&|k| matches!(k, EventKind::Unpack { .. })));
            assert!(has(&|k| matches!(k, EventKind::Ffty { .. })));
            assert!(has(&|k| matches!(k, EventKind::Fftx { .. })));
            // Stage-2 tiles are numbered after stage 1's: with nxl = 4 and
            // t = 2, stage 1 owns tiles 0..2 and stage 2 starts at 2.
            assert!(has(
                &|k| matches!(k, EventKind::Fftx { tile, .. } if *tile >= 2)
            ));
        }
    }

    #[test]
    fn simulated_pencil_runs_and_is_positive() {
        let spec = ProblemSpec::cube(256, 16);
        let t = pencil_simulated(umd_cluster(), spec, PencilGrid::near_square(16));
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn overlapped_pencil_beats_blocking_pencil() {
        // §7 realised: applying the overlap method to the 2-D decomposition
        // hides exchange time on the communication-bound UMD model.
        let spec = ProblemSpec::cube(256, 16);
        let grid = PencilGrid::near_square(16);
        let blocking = pencil_simulated(umd_cluster(), spec, grid);
        let overlapped = pencil_overlap_simulated(umd_cluster(), spec, grid, 2, 16);
        assert!(
            overlapped < blocking,
            "overlap must help the pencil path too: {overlapped:.3} vs {blocking:.3}"
        );
    }

    #[test]
    fn overlapped_pencil_is_deterministic() {
        let spec = ProblemSpec::cube(128, 8);
        let grid = PencilGrid::near_square(8);
        let a = pencil_overlap_simulated(umd_cluster(), spec, grid, 2, 8);
        let b = pencil_overlap_simulated(umd_cluster(), spec, grid, 2, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn params_cost_model_is_deterministic_and_positive() {
        let spec = ProblemSpec::cube(128, 8);
        let grid = PencilGrid::near_square(8);
        let params = pencil_seed(&spec, grid);
        let a = pencil_overlap_simulated_params(umd_cluster(), spec, grid, &params);
        let b = pencil_overlap_simulated_params(umd_cluster(), spec, grid, &params);
        assert!(a > 0.0 && a.is_finite());
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_simulated_transforms_amortise_plan_setup() {
        let spec = ProblemSpec::cube(128, 8);
        let grid = PencilGrid::near_square(8);
        let params = pencil_seed(&spec, grid);
        let reps = pencil_overlap_simulated_repeated(umd_cluster(), spec, grid, &params, 3);
        assert_eq!(reps.len(), 3);
        assert!(reps.iter().all(|t| *t > 0.0 && t.is_finite()));
        // Repetition 0 pays every tile's alltoall_init setup charge.
        assert!(
            reps[1] < reps[0],
            "persistent plans must amortise setup: {reps:?}"
        );
        assert_eq!(reps[1], reps[2]);
    }

    #[test]
    fn pencil_seed_is_feasible_for_every_grid_shape() {
        for p in [1, 2, 4, 6, 12, 16, 256] {
            let spec = ProblemSpec::cube(64, p);
            for grid in PencilGrid::divisor_pairs(p) {
                let params = pencil_seed(&spec, grid);
                assert!(
                    pencil_feasible(&spec, grid, &params),
                    "seed infeasible for p={p} {grid:?}"
                );
            }
        }
    }
}
