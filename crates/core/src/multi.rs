//! Inter-array + intra-array overlap — the paper's §7 third extension,
//! and the batching path of the multi-tenant service.
//!
//! Scientific simulations often transform a *sequence* of arrays per time
//! step (e.g. three velocity components). Kandalla et al. overlap only
//! *between* arrays; the paper overlaps only *within* one array; §7 plans
//! to combine both. This module implements that combination on the
//! simulated backend: the communication tiles of consecutive arrays form
//! one long pipeline, so array `a+1`'s FFTz/Transpose/FFTy/Pack also hide
//! the tail of array `a`'s all-to-alls — the fill/drain bubbles between
//! arrays disappear.
//!
//! [`crate::service`] reuses two pieces of this module: [`SlabCosts`], the
//! per-rank cost table both backends price tiles with (so the admission
//! controller predicts exactly the pipeline it gates), and
//! [`try_multi_simulated`], the fused job-train entry point a tenant's
//! same-geometry batch is routed through.

use crate::breakdown::StepTimes;
use crate::decomp::Decomp;
use crate::error::Error;
use crate::params::{ProblemSpec, TuningParams};
use crate::pipeline::{try_run_new, OverlapEnv, Recovery, Resilience};
use crate::real_env::Variant;
use crate::sim_env::try_fft3_simulated;
use simnet::model::{MachineModel, TransposeCost, ELEM_BYTES};
use simnet::{run_sim, OpId, Platform, SimRank};

/// The per-rank cost table of the slab pipeline: every compute phase and
/// the per-tile exchange volume, priced on one [`MachineModel`]. This is
/// the single source the fused multi-array environment below *and* the
/// service's admission predictor ([`crate::service`]) charge from, so a
/// completion-time prediction and the simulation it gates can never
/// disagree on what a tile costs.
#[derive(Debug, Clone)]
pub(crate) struct SlabCosts {
    machine: MachineModel,
    spec: ProblemSpec,
    params: TuningParams,
    transpose_cost: TransposeCost,
    /// x-planes this rank owns before the exchange.
    nxl: usize,
    /// y-planes this rank owns after the exchange.
    nyl: usize,
}

impl SlabCosts {
    /// Costs for one specific rank of the decomposition.
    pub(crate) fn for_rank(
        machine: MachineModel,
        spec: ProblemSpec,
        params: TuningParams,
        rank: usize,
    ) -> Self {
        let d = Decomp::new(spec.nx, spec.ny, spec.p);
        SlabCosts {
            machine,
            spec,
            params,
            transpose_cost: Self::transpose_cost_for(&spec),
            nxl: d.x.count(rank),
            nyl: d.y.count(rank),
        }
    }

    /// Costs for the most-loaded rank (rank 0 carries the big blocks) —
    /// what a conservative completion-time prediction prices against.
    pub(crate) fn worst_rank(
        machine: MachineModel,
        spec: ProblemSpec,
        params: TuningParams,
    ) -> Self {
        Self::for_rank(machine, spec, params, 0)
    }

    /// The transpose path the spec earns: fast for `Nx = Ny` (§3.5).
    pub(crate) fn transpose_cost_for(spec: &ProblemSpec) -> TransposeCost {
        if spec.square_xy() {
            TransposeCost::Fast
        } else {
            TransposeCost::Generic
        }
    }

    /// Communication tiles per array.
    pub(crate) fn tiles(&self) -> usize {
        self.params.tiles(&self.spec)
    }

    /// z-extent of local tile `local` (the last tile may be short).
    pub(crate) fn tile_len(&self, local: usize) -> usize {
        let z0 = local * self.params.t;
        (z0 + self.params.t).min(self.spec.nz) - z0
    }

    /// Batched 1-D FFTs along z over this rank's slab.
    pub(crate) fn fftz(&self) -> f64 {
        self.machine
            .fft_batch(self.spec.nz, (self.nxl * self.spec.ny) as u64)
    }

    /// Local transpose of the whole slab.
    pub(crate) fn transpose(&self) -> f64 {
        let bytes = (self.nxl * self.spec.ny * self.spec.nz) as u64 * ELEM_BYTES;
        self.machine.transpose(bytes, self.transpose_cost)
    }

    /// Batched FFTs along y for a tile of `tz` planes.
    pub(crate) fn ffty(&self, tz: usize) -> f64 {
        self.machine.fft_batch(self.spec.ny, (self.nxl * tz) as u64)
    }

    /// Cache-tiled pack of a tile into send order (§3.4).
    pub(crate) fn pack(&self, tz: usize) -> f64 {
        let tile_bytes = (tz * self.nxl * self.spec.ny) as u64 * ELEM_BYTES;
        let subtile = (self.params.px.min(self.nxl.max(1))
            * self.spec.ny
            * self.params.pz.min(tz.max(1))) as u64
            * ELEM_BYTES;
        let run = (self.spec.ny / self.spec.p.max(1)).max(1) as u64 * ELEM_BYTES;
        self.machine.pack(tile_bytes, subtile, run)
    }

    /// Cache-tiled unpack of a received tile.
    pub(crate) fn unpack(&self, tz: usize) -> f64 {
        let tile_bytes = (tz * self.nyl * self.spec.nx) as u64 * ELEM_BYTES;
        let subtile = (self.spec.nx
            * self.params.uy.min(self.nyl.max(1))
            * self.params.uz.min(tz.max(1))) as u64
            * ELEM_BYTES;
        let run = (self.spec.nx / self.spec.p.max(1)).max(1) as u64 * ELEM_BYTES;
        self.machine.pack(tile_bytes, subtile, run)
    }

    /// Batched FFTs along x for a tile of `tz` planes.
    pub(crate) fn fftx(&self, tz: usize) -> f64 {
        self.machine.fft_batch(self.spec.nx, (self.nyl * tz) as u64)
    }

    /// Per-peer all-to-all payload for a tile of `tz` planes.
    pub(crate) fn bytes_per_peer(&self, tz: usize) -> u64 {
        tz as u64 * self.nxl as u64 * (self.spec.ny / self.spec.p.max(1)) as u64 * ELEM_BYTES
    }

    pub(crate) fn params(&self) -> &TuningParams {
        &self.params
    }
}

/// Result of a multi-array simulated run.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Slowest rank's completion for the fused pipeline.
    pub fused_time: f64,
    /// The same workload as back-to-back single-array transforms.
    pub sequential_time: f64,
    /// Rank-0 breakdown of the fused pipeline.
    pub steps: StepTimes,
    /// What the degradation ladder had to do (rank 0's view); clean when
    /// no watchdog was armed or nothing stalled.
    pub recovery: Recovery,
}

/// A pipeline whose tile stream spans `narrays` independent arrays: tile
/// indices `a·k ..< (a+1)·k` belong to array `a`, and the per-array FFTz +
/// Transpose runs (with polls on the in-flight window) at each array
/// boundary.
struct MultiEnv<'a> {
    sim: &'a mut SimRank,
    costs: SlabCosts,
    narrays: usize,
    tiles_per_array: usize,
    steps: StepTimes,
    /// Virtual-time stall watchdog: a single wait longer than this many
    /// seconds is reported to the degradation ladder as [`Error::Stalled`].
    /// `None` disarms the watchdog (the legacy behaviour).
    stall_timeout: Option<f64>,
    /// Multiplier requested by the ladder's BoostPolls rung.
    poll_boost: u32,
    /// Current poll multiplier (1 until the ladder boosts).
    boost: u32,
    /// Tiles already reported as stalled — `simnet`'s `wait` is idempotent,
    /// so the ladder's retry of the same (completed) op returns instantly;
    /// this guard turns that into exactly one climb per slow tile.
    reported: Vec<bool>,
    /// World rank blamed in stall reports: the platform's worst straggler.
    worst_peer: usize,
}

impl MultiEnv<'_> {
    fn phase(&mut self, secs: f64, polls: u32, inflight: &[(usize, OpId)]) -> (f64, f64) {
        let ops: Vec<OpId> = inflight.iter().map(|&(_, op)| op).collect();
        let t0 = self.sim.now();
        let polls = polls.saturating_mul(self.boost);
        let test = self.sim.compute_with_polls(secs, polls, &ops).as_secs_f64();
        ((self.sim.now() - t0).as_secs_f64() - test, test)
    }

    /// FFTz + Transpose of array `a`, polling the previous array's
    /// still-in-flight tiles — the inter-array part of the overlap.
    fn fixed_steps(&mut self, inflight: &mut [(usize, OpId)]) {
        let fftz = self.costs.fftz();
        let transpose = self.costs.transpose();
        // Poll as often as a FFTy phase would, scaled to this duration.
        let polls = self.costs.params().fy.max(self.costs.params().fx);
        let (c, t) = self.phase(fftz, polls, inflight);
        self.steps.fftz += c;
        self.steps.test += t;
        let (c, t) = self.phase(transpose, polls, inflight);
        self.steps.transpose += c;
        self.steps.test += t;
    }

    fn tile_len(&self, tile: usize) -> usize {
        self.costs.tile_len(tile % self.tiles_per_array)
    }
}

impl OverlapEnv for MultiEnv<'_> {
    type Req = OpId;

    fn num_tiles(&self) -> usize {
        self.narrays * self.tiles_per_array
    }

    fn window(&self) -> usize {
        self.costs.params().w
    }

    fn fftz_transpose(&mut self) {
        // Array 0's fixed steps: nothing in flight yet.
        self.fixed_steps(&mut []);
    }

    fn ffty_pack(&mut self, tile: usize, inflight: &mut [(usize, OpId)]) -> Result<(), Error> {
        // At an array boundary, run the next array's fixed steps first —
        // overlapped with the previous array's in-flight all-to-alls.
        if tile % self.tiles_per_array == 0 && tile != 0 {
            self.fixed_steps(inflight);
        }
        let tz = self.tile_len(tile);
        let fy = self.costs.params().fy;
        let (c, t) = self.phase(self.costs.ffty(tz), fy, inflight);
        self.steps.ffty += c;
        self.steps.test += t;
        let fp = self.costs.params().fp;
        let (c, t) = self.phase(self.costs.pack(tz), fp, inflight);
        self.steps.pack += c;
        self.steps.test += t;
        Ok(())
    }

    fn post_a2a(&mut self, tile: usize) -> OpId {
        let tz = self.tile_len(tile);
        let t0 = self.sim.now();
        let op = self.sim.post_alltoall(self.costs.bytes_per_peer(tz));
        self.steps.ialltoall += (self.sim.now() - t0).as_secs_f64();
        op
    }

    fn wait(&mut self, tile: usize, req: OpId) -> Result<(), (OpId, Error)> {
        let t0 = self.sim.now();
        self.sim.wait(req);
        let waited = (self.sim.now() - t0).as_secs_f64();
        self.steps.wait += waited;
        // Virtual-time watchdog: the exchange *did* complete (simulated
        // time advanced through it), but it took longer than the armed
        // budget — report it so the ladder degrades instead of letting a
        // straggler silently serialise the whole job train. The ladder's
        // retry re-waits the same op; `SimRank::wait` is idempotent, so
        // the retry returns instantly and the `reported` guard makes this
        // exactly one strike per slow tile.
        if let Some(limit) = self.stall_timeout {
            if waited > limit && !self.reported[tile] {
                self.reported[tile] = true;
                return Err((
                    req,
                    Error::Stalled {
                        tile,
                        round: 0,
                        peer: self.worst_peer,
                    },
                ));
            }
        }
        Ok(())
    }

    fn unpack_fftx(&mut self, tile: usize, inflight: &mut [(usize, OpId)]) -> Result<(), Error> {
        let tz = self.tile_len(tile);
        let fu = self.costs.params().fu;
        let (c, t) = self.phase(self.costs.unpack(tz), fu, inflight);
        self.steps.unpack += c;
        self.steps.test += t;
        let fx = self.costs.params().fx;
        let (c, t) = self.phase(self.costs.fftx(tz), fx, inflight);
        self.steps.fftx += c;
        self.steps.test += t;
        Ok(())
    }

    fn boost_polls(&mut self) {
        self.boost = self.poll_boost.max(1);
    }

    fn escalate_watchdog(&mut self) {
        if let Some(limit) = self.stall_timeout.as_mut() {
            *limit *= 2.0;
        }
    }
}

/// Fallible multi-array pipeline: simulates `narrays` successive 3-D FFTs
/// with combined inter+intra-array overlap under the given [`Resilience`]
/// policy (arm `stall_timeout` — interpreted in **virtual seconds** — to
/// let the degradation ladder react to stragglers mid-train) and compares
/// against running them back to back.
///
/// Typed failures instead of the legacy panics: zero arrays is
/// [`Error::EmptyBatch`], an invalid `(spec, params)` pair is
/// [`Error::InfeasibleParams`] from the fallible single-array baseline.
pub fn try_multi_simulated(
    platform: Platform,
    spec: ProblemSpec,
    params: TuningParams,
    narrays: usize,
    res: &Resilience,
) -> Result<MultiReport, Error> {
    if narrays == 0 {
        return Err(Error::EmptyBatch);
    }
    // Fallible baseline first: validates extents and tuning parameters
    // before any simulated rank spins up.
    let single = try_fft3_simulated(platform.clone(), spec, Variant::New, params, false)?;
    let res = *res;

    let per_rank = run_sim(platform, spec.p, move |sim| {
        let start = sim.now();
        let costs = SlabCosts::for_rank(sim.platform().machine.clone(), spec, params, sim.rank());
        let faults = sim.platform().faults.clone();
        let worst_peer = (0..spec.p)
            .max_by(|&a, &b| {
                faults
                    .compute_factor(a)
                    .total_cmp(&faults.compute_factor(b))
            })
            .unwrap_or(0);
        let tiles_per_array = costs.tiles();
        let ntiles = narrays * tiles_per_array;
        let mut env = MultiEnv {
            sim,
            costs,
            narrays,
            tiles_per_array,
            steps: StepTimes::default(),
            stall_timeout: res.stall_timeout.map(|d| d.as_secs_f64()),
            poll_boost: res.poll_boost,
            boost: 1,
            reported: vec![false; ntiles],
            worst_peer,
        };
        let recovery = try_run_new(&mut env, &res)?;
        Ok::<_, Error>((env.steps, recovery, (env.sim.now() - start).as_secs_f64()))
    });

    let mut fused_time = 0.0f64;
    let mut rank0: Option<(StepTimes, Recovery)> = None;
    for r in per_rank {
        let (steps, recovery, t) = r?;
        fused_time = fused_time.max(t);
        if rank0.is_none() {
            rank0 = Some((steps, recovery));
        }
    }
    let (steps, recovery) = rank0.ok_or(Error::Internal("multi run produced no ranks"))?;
    Ok(MultiReport {
        fused_time,
        sequential_time: single.time * narrays as f64,
        steps,
        recovery,
    })
}

/// Simulates `narrays` successive 3-D FFTs with combined inter+intra-array
/// overlap and compares against running them back to back.
///
/// Panicking legacy wrapper around [`try_multi_simulated`] with the
/// default (disarmed) [`Resilience`].
pub fn multi_simulated(
    platform: Platform,
    spec: ProblemSpec,
    params: TuningParams,
    narrays: usize,
) -> MultiReport {
    try_multi_simulated(platform, spec, params, narrays, &Resilience::default())
        .unwrap_or_else(|e| panic!("multi-array pipeline failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamError;
    use crate::trace::DegradeAction;
    use simnet::model::umd_cluster;
    use std::time::Duration;

    #[test]
    fn fused_multi_array_beats_sequential() {
        let spec = ProblemSpec::cube(256, 16);
        let params = TuningParams::seed(&spec);
        let rep = multi_simulated(umd_cluster(), spec, params, 4);
        assert!(
            rep.fused_time < rep.sequential_time,
            "fused {:.3}s must beat sequential {:.3}s",
            rep.fused_time,
            rep.sequential_time
        );
        assert!(
            rep.recovery.clean(),
            "nothing should degrade on a clean run"
        );
    }

    #[test]
    fn one_array_is_close_to_the_single_pipeline() {
        let spec = ProblemSpec::cube(256, 16);
        let params = TuningParams::seed(&spec);
        let rep = multi_simulated(umd_cluster(), spec, params, 1);
        // Same work, slightly different poll placement during fixed steps.
        let ratio = rep.fused_time / rep.sequential_time;
        assert!((0.8..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gain_grows_with_array_count() {
        let spec = ProblemSpec::cube(256, 16);
        let params = TuningParams::seed(&spec);
        let g2 = {
            let r = multi_simulated(umd_cluster(), spec, params, 2);
            r.sequential_time / r.fused_time
        };
        let g6 = {
            let r = multi_simulated(umd_cluster(), spec, params, 6);
            r.sequential_time / r.fused_time
        };
        assert!(g6 >= g2 * 0.99, "g2={g2:.3} g6={g6:.3}");
    }

    /// Pinned regression (ISSUE #10 satellite 1): zero arrays is a typed
    /// [`Error::EmptyBatch`] from the `try_` path…
    #[test]
    fn zero_arrays_is_a_typed_error() {
        let spec = ProblemSpec::cube(64, 4);
        let params = TuningParams::seed(&spec);
        match try_multi_simulated(umd_cluster(), spec, params, 0, &Resilience::default()) {
            Err(Error::EmptyBatch) => {}
            other => panic!("expected EmptyBatch, got {other:?}"),
        }
    }

    /// …and the legacy wrapper still fails loudly (now via the typed
    /// error's message, not a bare `assert!`).
    #[test]
    #[should_panic(expected = "empty batch")]
    fn legacy_wrapper_panics_on_zero_arrays() {
        let spec = ProblemSpec::cube(64, 4);
        let params = TuningParams::seed(&spec);
        multi_simulated(umd_cluster(), spec, params, 0);
    }

    /// Pinned regression (ISSUE #10 satellite 1): infeasible tuning
    /// parameters surface as [`Error::InfeasibleParams`] through the
    /// fallible baseline, not as a garbage cost estimate or a panic.
    #[test]
    fn infeasible_params_are_a_typed_error() {
        let spec = ProblemSpec::cube(64, 4);
        let mut params = TuningParams::seed(&spec);
        params.t = spec.nz + 1; // tile taller than the axis
        match try_multi_simulated(umd_cluster(), spec, params, 2, &Resilience::default()) {
            Err(Error::InfeasibleParams(ParamError::TileSize(_))) => {}
            other => panic!("expected InfeasibleParams(TileSize), got {other:?}"),
        }
    }

    /// Satellite 2: with a watchdog armed, a severe straggler mid-train
    /// trips the degradation ladder (BoostPolls first) instead of silently
    /// serialising the whole batch — and the run still completes.
    #[test]
    fn straggler_during_job_train_degrades_instead_of_hanging() {
        let spec = ProblemSpec::cube(256, 16);
        let params = TuningParams::seed(&spec);
        // Budget each wait at the *whole* clean run's duration: no single
        // clean wait can exceed it, so a clean run never trips…
        let clean = multi_simulated(umd_cluster(), spec, params, 2);
        let res = Resilience {
            stall_timeout: Some(Duration::from_secs_f64(clean.fused_time)),
            ..Resilience::default()
        };
        let calm = try_multi_simulated(umd_cluster(), spec, params, 2, &res)
            .unwrap_or_else(|e| panic!("clean run failed under watchdog: {e}"));
        assert_eq!(calm.recovery.stalls_detected, 0, "{:?}", calm.recovery);

        // …while a 200× compute straggler makes individual exchanges dwarf
        // the whole clean run and must be caught.
        let slow = umd_cluster().with_straggler(1, 200.0);
        let rep = try_multi_simulated(slow, spec, params, 2, &res)
            .unwrap_or_else(|e| panic!("straggled run failed to degrade: {e}"));
        assert!(
            rep.recovery.stalls_detected > 0,
            "a 200x straggler must trip a whole-run-length watchdog"
        );
        assert_eq!(
            rep.recovery.actions.first(),
            Some(&DegradeAction::BoostPolls),
            "ladder must start at its gentlest rung: {:?}",
            rep.recovery.actions
        );
        assert!(
            rep.fused_time > clean.fused_time,
            "straggled run should still be slower end to end"
        );
    }

    /// The disarmed default stays byte-for-byte the legacy behaviour even
    /// under a straggler: no stalls detected, no ladder actions.
    #[test]
    fn disarmed_watchdog_never_reports() {
        let spec = ProblemSpec::cube(256, 16);
        let params = TuningParams::seed(&spec);
        let slow = umd_cluster().with_straggler(1, 50.0);
        let rep = multi_simulated(slow, spec, params, 2);
        assert!(rep.recovery.clean(), "{:?}", rep.recovery);
    }
}
