//! Inter-array + intra-array overlap — the paper's §7 third extension.
//!
//! Scientific simulations often transform a *sequence* of arrays per time
//! step (e.g. three velocity components). Kandalla et al. overlap only
//! *between* arrays; the paper overlaps only *within* one array; §7 plans
//! to combine both. This module implements that combination on the
//! simulated backend: the communication tiles of consecutive arrays form
//! one long pipeline, so array `a+1`'s FFTz/Transpose/FFTy/Pack also hide
//! the tail of array `a`'s all-to-alls — the fill/drain bubbles between
//! arrays disappear.

use crate::breakdown::StepTimes;
use crate::decomp::Decomp;
use crate::error::Error;
use crate::params::{ProblemSpec, TuningParams};
use crate::pipeline::{run_new, OverlapEnv};
use crate::real_env::Variant;
use crate::sim_env::fft3_simulated;
use simnet::model::{TransposeCost, ELEM_BYTES};
use simnet::{run_sim, OpId, Platform, SimRank};

/// Result of a multi-array simulated run.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Slowest rank's completion for the fused pipeline.
    pub fused_time: f64,
    /// The same workload as back-to-back single-array transforms.
    pub sequential_time: f64,
    /// Rank-0 breakdown of the fused pipeline.
    pub steps: StepTimes,
}

/// A pipeline whose tile stream spans `narrays` independent arrays: tile
/// indices `a·k ..< (a+1)·k` belong to array `a`, and the per-array FFTz +
/// Transpose runs (with polls on the in-flight window) at each array
/// boundary.
struct MultiEnv<'a> {
    sim: &'a mut SimRank,
    spec: ProblemSpec,
    params: TuningParams,
    narrays: usize,
    tiles_per_array: usize,
    transpose_cost: TransposeCost,
    steps: StepTimes,
}

impl MultiEnv<'_> {
    fn nxl(&self) -> usize {
        Decomp::new(self.spec.nx, self.spec.ny, self.spec.p)
            .x
            .count(self.sim.rank())
    }

    fn nyl(&self) -> usize {
        Decomp::new(self.spec.nx, self.spec.ny, self.spec.p)
            .y
            .count(self.sim.rank())
    }

    fn tile_len(&self, tile: usize) -> usize {
        let local = tile % self.tiles_per_array;
        let z0 = local * self.params.t;
        (z0 + self.params.t).min(self.spec.nz) - z0
    }

    fn phase(&mut self, secs: f64, polls: u32, inflight: &[(usize, OpId)]) -> (f64, f64) {
        let ops: Vec<OpId> = inflight.iter().map(|&(_, op)| op).collect();
        let t0 = self.sim.now();
        let test = self.sim.compute_with_polls(secs, polls, &ops).as_secs_f64();
        ((self.sim.now() - t0).as_secs_f64() - test, test)
    }

    /// FFTz + Transpose of array `a`, polling the previous array's
    /// still-in-flight tiles — the inter-array part of the overlap.
    fn fixed_steps(&mut self, inflight: &mut [(usize, OpId)]) {
        let m = self.sim.platform().machine.clone();
        let fftz = m.fft_batch(self.spec.nz, (self.nxl() * self.spec.ny) as u64);
        let bytes = (self.nxl() * self.spec.ny * self.spec.nz) as u64 * ELEM_BYTES;
        let transpose = m.transpose(bytes, self.transpose_cost);
        // Poll as often as a FFTy phase would, scaled to this duration.
        let polls = self.params.fy.max(self.params.fx);
        let (c, t) = self.phase(fftz, polls, inflight);
        self.steps.fftz += c;
        self.steps.test += t;
        let (c, t) = self.phase(transpose, polls, inflight);
        self.steps.transpose += c;
        self.steps.test += t;
    }
}

impl OverlapEnv for MultiEnv<'_> {
    type Req = OpId;

    fn num_tiles(&self) -> usize {
        self.narrays * self.tiles_per_array
    }

    fn window(&self) -> usize {
        self.params.w
    }

    fn fftz_transpose(&mut self) {
        // Array 0's fixed steps: nothing in flight yet.
        self.fixed_steps(&mut []);
    }

    fn ffty_pack(&mut self, tile: usize, inflight: &mut [(usize, OpId)]) -> Result<(), Error> {
        // At an array boundary, run the next array's fixed steps first —
        // overlapped with the previous array's in-flight all-to-alls.
        if tile % self.tiles_per_array == 0 && tile != 0 {
            self.fixed_steps(inflight);
        }
        let tz = self.tile_len(tile);
        let m = self.sim.platform().machine.clone();
        let nxl = self.nxl();
        let (c, t) = self.phase(
            m.fft_batch(self.spec.ny, (nxl * tz) as u64),
            self.params.fy,
            inflight,
        );
        self.steps.ffty += c;
        self.steps.test += t;
        let tile_bytes = (tz * nxl * self.spec.ny) as u64 * ELEM_BYTES;
        let subtile =
            (self.params.px.min(nxl.max(1)) * self.spec.ny * self.params.pz.min(tz.max(1))) as u64
                * ELEM_BYTES;
        let run = (self.spec.ny / self.spec.p.max(1)).max(1) as u64 * ELEM_BYTES;
        let (c, t) = self.phase(m.pack(tile_bytes, subtile, run), self.params.fp, inflight);
        self.steps.pack += c;
        self.steps.test += t;
        Ok(())
    }

    fn post_a2a(&mut self, tile: usize) -> OpId {
        let tz = self.tile_len(tile) as u64;
        let bytes =
            tz * self.nxl() as u64 * (self.spec.ny / self.spec.p.max(1)) as u64 * ELEM_BYTES;
        let t0 = self.sim.now();
        let op = self.sim.post_alltoall(bytes);
        self.steps.ialltoall += (self.sim.now() - t0).as_secs_f64();
        op
    }

    fn wait(&mut self, _tile: usize, req: OpId) -> Result<(), (OpId, Error)> {
        let t0 = self.sim.now();
        self.sim.wait(req);
        self.steps.wait += (self.sim.now() - t0).as_secs_f64();
        Ok(())
    }

    fn unpack_fftx(&mut self, tile: usize, inflight: &mut [(usize, OpId)]) -> Result<(), Error> {
        let tz = self.tile_len(tile);
        let m = self.sim.platform().machine.clone();
        let nyl = self.nyl();
        let tile_bytes = (tz * nyl * self.spec.nx) as u64 * ELEM_BYTES;
        let subtile =
            (self.spec.nx * self.params.uy.min(nyl.max(1)) * self.params.uz.min(tz.max(1))) as u64
                * ELEM_BYTES;
        let run = (self.spec.nx / self.spec.p.max(1)).max(1) as u64 * ELEM_BYTES;
        let (c, t) = self.phase(m.pack(tile_bytes, subtile, run), self.params.fu, inflight);
        self.steps.unpack += c;
        self.steps.test += t;
        let (c, t) = self.phase(
            m.fft_batch(self.spec.nx, (nyl * tz) as u64),
            self.params.fx,
            inflight,
        );
        self.steps.fftx += c;
        self.steps.test += t;
        Ok(())
    }
}

/// Simulates `narrays` successive 3-D FFTs with combined inter+intra-array
/// overlap and compares against running them back to back.
pub fn multi_simulated(
    platform: Platform,
    spec: ProblemSpec,
    params: TuningParams,
    narrays: usize,
) -> MultiReport {
    assert!(narrays >= 1);
    let transpose_cost = if spec.square_xy() {
        TransposeCost::Fast
    } else {
        TransposeCost::Generic
    };

    let per_rank = run_sim(platform.clone(), spec.p, move |sim| {
        let start = sim.now();
        let mut env = MultiEnv {
            sim,
            spec,
            params,
            narrays,
            tiles_per_array: params.tiles(&spec),
            transpose_cost,
            steps: StepTimes::default(),
        };
        run_new(&mut env);
        (env.steps, (env.sim.now() - start).as_secs_f64())
    });
    let fused_time = per_rank.iter().map(|r| r.1).fold(0.0, f64::max);

    let single = fft3_simulated(platform, spec, Variant::New, params, false);
    MultiReport {
        fused_time,
        sequential_time: single.time * narrays as f64,
        steps: per_rank[0].0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::model::umd_cluster;

    #[test]
    fn fused_multi_array_beats_sequential() {
        let spec = ProblemSpec::cube(256, 16);
        let params = TuningParams::seed(&spec);
        let rep = multi_simulated(umd_cluster(), spec, params, 4);
        assert!(
            rep.fused_time < rep.sequential_time,
            "fused {:.3}s must beat sequential {:.3}s",
            rep.fused_time,
            rep.sequential_time
        );
    }

    #[test]
    fn one_array_is_close_to_the_single_pipeline() {
        let spec = ProblemSpec::cube(256, 16);
        let params = TuningParams::seed(&spec);
        let rep = multi_simulated(umd_cluster(), spec, params, 1);
        // Same work, slightly different poll placement during fixed steps.
        let ratio = rep.fused_time / rep.sequential_time;
        assert!((0.8..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gain_grows_with_array_count() {
        let spec = ProblemSpec::cube(256, 16);
        let params = TuningParams::seed(&spec);
        let g2 = {
            let r = multi_simulated(umd_cluster(), spec, params, 2);
            r.sequential_time / r.fused_time
        };
        let g6 = {
            let r = multi_simulated(umd_cluster(), spec, params, 6);
            r.sequential_time / r.fused_time
        };
        assert!(g6 >= g2 * 0.99, "g2={g2:.3} g6={g6:.3}");
    }
}
