//! Typed errors for the fallible transform entry points.
//!
//! The original entry points panic on misuse (infeasible tuning parameters)
//! and spin forever on a stalled peer. The `try_` family — `try_fft3_dist`,
//! `try_fft3_dist_traced`, `try_fft3_simulated` — surfaces both conditions
//! as values of this [`Error`] type instead, and the resilient pipeline
//! driver ([`crate::pipeline::try_run_new`]) reports which tile the fault
//! hit.

use crate::params::ParamError;

/// Why a distributed transform could not run (or complete).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The tuning parameters fail validation for the problem and rank
    /// count; carries the specific constraint violated.
    InfeasibleParams(ParamError),
    /// A pencil process grid does not cover the ranks it was asked to run
    /// over (`pr · pc ≠ p`): the grid disagrees with the communicator size
    /// or with `spec.p`. The `try_` pencil entry points return this instead
    /// of asserting, so a mis-sized grid is a recoverable caller error, not
    /// a panic inside a collective.
    GridMismatch {
        /// Grid rows.
        pr: usize,
        /// Grid columns.
        pc: usize,
        /// Ranks the grid must cover exactly.
        expected: usize,
    },
    /// A tile's all-to-all made no progress for the configured watchdog
    /// timeout, and the degradation ladder ran out of rungs.
    Stalled {
        /// Communication tile whose exchange stalled.
        tile: usize,
        /// First incomplete round of that exchange's schedule.
        round: usize,
        /// **World rank** whose block the round is missing — the same
        /// numbering [`Error::RankFailed`] uses, so the two stay comparable
        /// after a `shrink()` renumbers communicator ranks.
        peer: usize,
    },
    /// A tile's all-to-all lost a round send past the fault plan's
    /// retransmit budget.
    Dropped {
        /// Communication tile whose exchange lost data.
        tile: usize,
        /// The round whose send was lost.
        round: usize,
        /// Destination rank of the lost block.
        peer: usize,
    },
    /// A peer process died (ULFM `MPI_ERR_PROC_FAILED` analogue): one of
    /// the tile's operations targeted a rank the runtime knows to be dead.
    /// Recoverable via [`crate::recover::run_recoverable`].
    RankFailed {
        /// Communication tile whose exchange observed the death.
        tile: usize,
        /// World rank of the failed process.
        rank: usize,
    },
    /// The communicator was revoked by a peer (ULFM `MPI_ERR_REVOKED`
    /// analogue): another rank hit a failure first and poisoned in-flight
    /// operations so everyone reaches the recovery path together.
    Revoked {
        /// Communication tile whose exchange was poisoned.
        tile: usize,
    },
    /// Silent data corruption was detected by an integrity check: a wire
    /// checksum past its retransmit budget, a staging-buffer hash mismatch,
    /// or an ABFT linearity check on a compute stage. The data was **not**
    /// used; depending on the stage the pipeline may heal transparently
    /// (re-pack and retransmit) before this surfaces.
    IntegrityFailed {
        /// Communication tile whose data failed verification.
        tile: usize,
        /// Which integrity layer caught it.
        stage: IntegrityStage,
    },
    /// Recovery was attempted but cannot proceed — e.g. a failed rank's
    /// input slab has no surviving source; carries the reason. Agreed on by
    /// all survivors, so every living rank returns this same value.
    Unrecoverable(&'static str),
    /// The post-recovery self-verification (Parseval energy check) did not
    /// hold within tolerance: the recomputed result is not trusted.
    VerificationFailed,
    /// A batched entry point was handed zero work items (`narrays == 0`,
    /// an empty job train): there is nothing to transform. The legacy
    /// `multi_simulated` turned this caller error into an `assert!` panic;
    /// the `try_` path reports it as a value.
    EmptyBatch,
    /// An invariant the pipeline relies on was violated (a bug, not an
    /// environmental fault); carries a static description.
    Internal(&'static str),
}

/// Which integrity layer detected silent data corruption (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityStage {
    /// The mpisim wire checksum: a round payload corrupted in transit,
    /// past the link-layer retransmit budget.
    Wire,
    /// The resident hash over the packed staging buffer: the data changed
    /// between pack and post (memory SDC at a tile boundary).
    Pack,
    /// The ABFT checksum line through the FFTy stage: the transformed
    /// batch no longer sums to the transformed sum (compute SDC).
    Ffty,
    /// The ABFT checksum line through the FFTx stage.
    Fftx,
}

impl std::fmt::Display for IntegrityStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IntegrityStage::Wire => "wire checksum",
            IntegrityStage::Pack => "staging-buffer hash",
            IntegrityStage::Ffty => "FFTy ABFT checksum line",
            IntegrityStage::Fftx => "FFTx ABFT checksum line",
        })
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Keep the "infeasible parameters" prefix: the panicking legacy
            // wrappers format this Display, and existing callers match on
            // that message.
            Error::InfeasibleParams(e) => write!(f, "infeasible parameters: {e}"),
            Error::GridMismatch { pr, pc, expected } => write!(
                f,
                "pencil grid {pr}x{pc} covers {} rank(s), expected {expected}",
                pr * pc
            ),
            Error::Stalled { tile, round, peer } => write!(
                f,
                "tile {tile} stalled in round {round} waiting on rank {peer}"
            ),
            Error::Dropped { tile, round, peer } => write!(
                f,
                "tile {tile} lost its round {round} send to rank {peer} past the retransmit budget"
            ),
            Error::RankFailed { tile, rank } => {
                write!(f, "tile {tile} observed the death of rank {rank}")
            }
            Error::Revoked { tile } => {
                write!(f, "tile {tile} interrupted: communicator revoked by a peer")
            }
            Error::IntegrityFailed { tile, stage } => write!(
                f,
                "tile {tile} failed its {stage} — silent corruption detected"
            ),
            Error::EmptyBatch => write!(f, "empty batch: zero arrays to transform"),
            Error::Unrecoverable(why) => write!(f, "unrecoverable failure: {why}"),
            Error::VerificationFailed => {
                write!(f, "post-recovery verification failed: energy mismatch")
            }
            Error::Internal(msg) => write!(f, "internal pipeline error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParamError> for Error {
    fn from(e: ParamError) -> Self {
        Error::InfeasibleParams(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_the_legacy_infeasible_prefix() {
        let e = Error::InfeasibleParams(ParamError::Window(9));
        assert!(e.to_string().starts_with("infeasible parameters: "));
    }

    #[test]
    fn grid_mismatch_names_grid_and_expectation() {
        let e = Error::GridMismatch {
            pr: 2,
            pc: 3,
            expected: 8,
        };
        let s = e.to_string();
        assert!(
            s.contains("2x3") && s.contains("6") && s.contains("8"),
            "{s}"
        );
    }

    #[test]
    fn fault_errors_name_their_coordinates() {
        let s = Error::Stalled {
            tile: 3,
            round: 2,
            peer: 5,
        }
        .to_string();
        assert!(s.contains("tile 3") && s.contains("round 2") && s.contains("rank 5"));
        let d = Error::Dropped {
            tile: 1,
            round: 4,
            peer: 0,
        }
        .to_string();
        assert!(d.contains("tile 1") && d.contains("round 4") && d.contains("rank 0"));
    }

    #[test]
    fn failure_errors_name_tile_and_rank() {
        let e = Error::RankFailed { tile: 2, rank: 3 };
        let s = e.to_string();
        assert!(s.contains("tile 2") && s.contains("rank 3"), "{s}");
        let r = Error::Revoked { tile: 5 }.to_string();
        assert!(r.contains("tile 5") && r.contains("revoked"), "{r}");
        assert!(Error::Unrecoverable("no input source")
            .to_string()
            .contains("no input source"));
        assert!(Error::VerificationFailed.to_string().contains("energy"));
    }

    #[test]
    fn empty_batch_names_the_cause() {
        let s = Error::EmptyBatch.to_string();
        assert!(
            s.contains("empty batch") && s.contains("zero arrays"),
            "{s}"
        );
    }

    #[test]
    fn integrity_errors_name_tile_and_stage() {
        for (stage, needle) in [
            (IntegrityStage::Wire, "wire"),
            (IntegrityStage::Pack, "staging"),
            (IntegrityStage::Ffty, "FFTy"),
            (IntegrityStage::Fftx, "FFTx"),
        ] {
            let s = Error::IntegrityFailed { tile: 4, stage }.to_string();
            assert!(s.contains("tile 4") && s.contains(needle), "{s}");
        }
    }
}
